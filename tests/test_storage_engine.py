"""Unit tests for the MVCC storage engine."""

import pytest

from repro.errors import (
    DuplicateKeyError,
    StorageError,
    TableNotFoundError,
    TransactionError,
)
from repro.sim import Environment
from repro.storage import (
    ColumnDef,
    DistributionSpec,
    RedoCommit,
    RedoInsert,
    RedoPendingCommit,
    Snapshot,
    StorageEngine,
    TableSchema,
)


def make_engine():
    env = Environment()
    engine = StorageEngine(env, "dn1")
    schema = TableSchema(
        name="accounts",
        columns=[ColumnDef("id", "int"), ColumnDef("balance", "int"),
                 ColumnDef("owner", "text")],
        primary_key=("id",),
    )
    engine.create_table(schema)
    return env, engine


def commit(engine, txid, ts):
    engine.log_pending_commit(txid)
    engine.commit(txid, ts)


class TestDdl:
    def test_create_and_drop_table(self):
        env, engine = make_engine()
        assert engine.catalog.has_table("accounts")
        engine.drop_table("accounts", ddl_ts=50)
        assert not engine.catalog.has_table("accounts")
        with pytest.raises(TableNotFoundError):
            engine.read("accounts", (1,), Snapshot(100))

    def test_ddl_timestamps_recorded(self):
        env, engine = make_engine()
        engine.create_index("accounts", "owner", ddl_ts=77)
        assert engine.catalog.ddl_ts("accounts") == 77
        assert engine.catalog.max_ddl_ts == 77

    def test_duplicate_table_rejected(self):
        env, engine = make_engine()
        with pytest.raises(StorageError):
            engine.create_table(TableSchema(
                name="accounts", columns=[ColumnDef("id", "int")],
                primary_key=("id",)))

    def test_schema_validates_primary_key(self):
        with pytest.raises(StorageError):
            TableSchema(name="bad", columns=[ColumnDef("a")], primary_key=("b",))

    def test_default_distribution_key_is_first_pk_column(self):
        schema = TableSchema(name="t", columns=[ColumnDef("a"), ColumnDef("b")],
                             primary_key=("a", "b"))
        assert schema.distribution.method == "hash"
        assert schema.distribution.column == "a"

    def test_replicated_distribution(self):
        schema = TableSchema(name="t", columns=[ColumnDef("a")],
                             primary_key=("a",),
                             distribution=DistributionSpec("replicated"))
        assert schema.distribution.column is None


class TestInsertReadVisibility:
    def test_own_writes_visible_before_commit(self):
        env, engine = make_engine()
        engine.begin(10)
        engine.insert(10, "accounts", {"id": 1, "balance": 100, "owner": "ann"})
        own = Snapshot(read_ts=0, txid=10)
        other = Snapshot(read_ts=10**15)
        assert engine.read("accounts", (1,), own)["balance"] == 100
        assert engine.read("accounts", (1,), other) is None

    def test_committed_row_visible_at_or_after_commit_ts(self):
        env, engine = make_engine()
        engine.begin(10)
        engine.insert(10, "accounts", {"id": 1, "balance": 100, "owner": "ann"})
        commit(engine, 10, ts=500)
        assert engine.read("accounts", (1,), Snapshot(499)) is None
        assert engine.read("accounts", (1,), Snapshot(500))["balance"] == 100
        assert engine.read("accounts", (1,), Snapshot(501))["balance"] == 100

    def test_duplicate_key_rejected(self):
        env, engine = make_engine()
        engine.begin(10)
        engine.insert(10, "accounts", {"id": 1, "balance": 1, "owner": "a"})
        commit(engine, 10, ts=100)
        engine.begin(11)
        with pytest.raises(DuplicateKeyError):
            engine.insert(11, "accounts", {"id": 1, "balance": 2, "owner": "b"})

    def test_concurrent_uncommitted_insert_conflicts(self):
        env, engine = make_engine()
        engine.begin(10)
        engine.begin(11)
        engine.insert(10, "accounts", {"id": 1, "balance": 1, "owner": "a"})
        with pytest.raises(DuplicateKeyError):
            engine.insert(11, "accounts", {"id": 1, "balance": 2, "owner": "b"})

    def test_reinsert_after_delete(self):
        env, engine = make_engine()
        engine.begin(10)
        engine.insert(10, "accounts", {"id": 1, "balance": 1, "owner": "a"})
        commit(engine, 10, ts=100)
        engine.begin(11)
        assert engine.delete(11, "accounts", (1,))
        commit(engine, 11, ts=200)
        engine.begin(12)
        engine.insert(12, "accounts", {"id": 1, "balance": 9, "owner": "b"})
        commit(engine, 12, ts=300)
        assert engine.read("accounts", (1,), Snapshot(300))["owner"] == "b"
        # Time travel: the old row is still visible at ts 150.
        assert engine.read("accounts", (1,), Snapshot(150))["owner"] == "a"


class TestUpdateDelete:
    def _seed(self, engine):
        engine.begin(1)
        engine.insert(1, "accounts", {"id": 1, "balance": 100, "owner": "ann"})
        engine.insert(1, "accounts", {"id": 2, "balance": 200, "owner": "bob"})
        commit(engine, 1, ts=100)

    def test_update_creates_new_version(self):
        env, engine = make_engine()
        self._seed(engine)
        engine.begin(2)
        new_row = engine.update(2, "accounts", (1,), {"balance": 150})
        assert new_row["balance"] == 150
        commit(engine, 2, ts=200)
        assert engine.read("accounts", (1,), Snapshot(150))["balance"] == 100
        assert engine.read("accounts", (1,), Snapshot(200))["balance"] == 150

    def test_update_missing_row_returns_none(self):
        env, engine = make_engine()
        self._seed(engine)
        engine.begin(2)
        assert engine.update(2, "accounts", (99,), {"balance": 1}) is None

    def test_update_own_insert_coalesces(self):
        env, engine = make_engine()
        engine.begin(2)
        engine.insert(2, "accounts", {"id": 5, "balance": 10, "owner": "eve"})
        engine.update(2, "accounts", (5,), {"balance": 20})
        commit(engine, 2, ts=100)
        assert engine.read("accounts", (5,), Snapshot(100))["balance"] == 20

    def test_delete_hides_row_from_later_snapshots(self):
        env, engine = make_engine()
        self._seed(engine)
        engine.begin(2)
        assert engine.delete(2, "accounts", (2,))
        commit(engine, 2, ts=200)
        assert engine.read("accounts", (2,), Snapshot(150))["owner"] == "bob"
        assert engine.read("accounts", (2,), Snapshot(200)) is None

    def test_delete_missing_row_returns_false(self):
        env, engine = make_engine()
        self._seed(engine)
        engine.begin(2)
        assert not engine.delete(2, "accounts", (42,))

    def test_update_targets_latest_committed_version(self):
        """Read-committed write rule: a later update sees the balance left
        by the previously committed transaction, not its own stale snapshot."""
        env, engine = make_engine()
        self._seed(engine)
        engine.begin(2)
        engine.update(2, "accounts", (1,), {"balance": 150})
        commit(engine, 2, ts=200)
        engine.begin(3)
        row = engine.update(3, "accounts", (1,), {"owner": "carl"})
        assert row["balance"] == 150  # not 100
        commit(engine, 3, ts=300)


class TestAbort:
    def test_abort_insert_removes_version(self):
        env, engine = make_engine()
        engine.begin(2)
        engine.insert(2, "accounts", {"id": 7, "balance": 1, "owner": "x"})
        engine.abort(2)
        assert engine.read("accounts", (7,), Snapshot(10**15)) is None
        # Key is free for reuse.
        engine.begin(3)
        engine.insert(3, "accounts", {"id": 7, "balance": 2, "owner": "y"})
        commit(engine, 3, ts=100)
        assert engine.read("accounts", (7,), Snapshot(100))["balance"] == 2

    def test_abort_update_restores_old_version(self):
        env, engine = make_engine()
        engine.begin(1)
        engine.insert(1, "accounts", {"id": 1, "balance": 100, "owner": "a"})
        commit(engine, 1, ts=100)
        engine.begin(2)
        engine.update(2, "accounts", (1,), {"balance": 0})
        engine.abort(2)
        assert engine.read("accounts", (1,), Snapshot(200))["balance"] == 100
        # And the row is updatable again.
        engine.begin(3)
        assert engine.update(3, "accounts", (1,), {"balance": 5}) is not None

    def test_abort_delete_restores_row(self):
        env, engine = make_engine()
        engine.begin(1)
        engine.insert(1, "accounts", {"id": 1, "balance": 100, "owner": "a"})
        commit(engine, 1, ts=100)
        engine.begin(2)
        engine.delete(2, "accounts", (1,))
        engine.abort(2)
        assert engine.read("accounts", (1,), Snapshot(200)) is not None

    def test_double_commit_rejected(self):
        env, engine = make_engine()
        engine.begin(1)
        commit(engine, 1, ts=100)
        with pytest.raises(TransactionError):
            engine.commit(1, 200)


class TestTwoPhase:
    def test_prepare_then_commit_prepared(self):
        env, engine = make_engine()
        engine.begin(1)
        engine.insert(1, "accounts", {"id": 1, "balance": 1, "owner": "a"})
        engine.prepare(1)
        engine.commit_prepared(1, commit_ts=100)
        assert engine.read("accounts", (1,), Snapshot(100)) is not None

    def test_prepare_then_abort_prepared(self):
        env, engine = make_engine()
        engine.begin(1)
        engine.insert(1, "accounts", {"id": 1, "balance": 1, "owner": "a"})
        engine.prepare(1)
        engine.abort_prepared(1)
        assert engine.read("accounts", (1,), Snapshot(10**15)) is None

    def test_commit_prepared_requires_prepare(self):
        env, engine = make_engine()
        engine.begin(1)
        with pytest.raises(TransactionError):
            engine.commit_prepared(1, commit_ts=100)


class TestRedoStream:
    def test_dml_streams_records_before_commit(self):
        env, engine = make_engine()
        start = len(engine.wal)
        engine.begin(1)
        engine.insert(1, "accounts", {"id": 1, "balance": 1, "owner": "a"})
        assert len(engine.wal) == start + 1
        assert isinstance(engine.wal.records_from(start)[0], RedoInsert)

    def test_commit_order_pending_then_commit(self):
        env, engine = make_engine()
        engine.begin(1)
        engine.insert(1, "accounts", {"id": 1, "balance": 1, "owner": "a"})
        engine.log_pending_commit(1)
        engine.commit(1, 100)
        kinds = [type(record) for record in engine.wal.records_from(0)]
        assert kinds[-2:] == [RedoPendingCommit, RedoCommit]

    def test_lsns_are_dense_and_increasing(self):
        env, engine = make_engine()
        engine.begin(1)
        engine.insert(1, "accounts", {"id": 1, "balance": 1, "owner": "a"})
        commit(engine, 1, ts=100)
        lsns = [record.lsn for record in engine.wal.records_from(0)]
        assert lsns == list(range(1, len(lsns) + 1))

    def test_heartbeat_advances_last_commit_ts(self):
        env, engine = make_engine()
        engine.heartbeat(999)
        assert engine.last_commit_ts == 999


class TestScanAndIndex:
    def _seed(self, engine):
        engine.begin(1)
        for i in range(10):
            engine.insert(1, "accounts",
                          {"id": i, "balance": i * 10, "owner": f"u{i % 3}"})
        commit(engine, 1, ts=100)

    def test_scan_visible_rows(self):
        env, engine = make_engine()
        self._seed(engine)
        rows = list(engine.scan("accounts", Snapshot(100)))
        assert len(rows) == 10

    def test_scan_with_predicate(self):
        env, engine = make_engine()
        self._seed(engine)
        rows = list(engine.scan("accounts", Snapshot(100),
                                lambda row: row["balance"] >= 50))
        assert len(rows) == 5

    def test_scan_respects_snapshot(self):
        env, engine = make_engine()
        self._seed(engine)
        assert list(engine.scan("accounts", Snapshot(99))) == []

    def test_index_lookup(self):
        env, engine = make_engine()
        self._seed(engine)
        engine.create_index("accounts", "owner", ddl_ts=150)
        rows = engine.lookup_index("accounts", "owner", "u0", Snapshot(200))
        assert sorted(row["id"] for row in rows) == [0, 3, 6, 9]

    def test_index_lookup_without_index_raises(self):
        env, engine = make_engine()
        self._seed(engine)
        with pytest.raises(StorageError):
            engine.lookup_index("accounts", "owner", "u0", Snapshot(200))

    def test_index_tracks_new_versions(self):
        env, engine = make_engine()
        self._seed(engine)
        engine.create_index("accounts", "owner", ddl_ts=150)
        engine.begin(2)
        engine.update(2, "accounts", (0,), {"owner": "zed"})
        commit(engine, 2, ts=200)
        rows = engine.lookup_index("accounts", "owner", "zed", Snapshot(200))
        assert [row["id"] for row in rows] == [0]
        old = engine.lookup_index("accounts", "owner", "u0", Snapshot(200))
        assert sorted(row["id"] for row in old) == [3, 6, 9]
