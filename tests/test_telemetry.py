"""The telemetry pipeline: windowed time-series, online SLO monitors,
commit critical-path analysis, and the dashboard.

Everything here must hold deterministically: the same run produces the
same windows, the same alerts (same windows, same labels), and a
critical-path attribution that sums to each transaction's measured e2e
latency *exactly* — these are the assertable claims the telemetry layer
exists to make checkable.
"""

import json

import pytest

from repro import ClusterConfig, build_cluster, one_region
from repro.obs import telemetry_snapshot
from repro.obs.critpath import SEGMENTS, CriticalPathReport, analyze
from repro.obs.dashboard import Dashboard
from repro.obs.monitor import (
    MonitorEngine,
    Rule,
    alerts_digest,
    default_monitor_rules,
)
from repro.obs.timeseries import COUNTER, GAUGE, TimeSeriesStore
from repro.sim.core import Environment
from repro.sim.units import ms
from repro.workloads import TpccConfig, TpccWorkload, run_workload

W = 100  # tiny window width for unit tests


def make_store(window_ns=W, capacity=256):
    return TimeSeriesStore(Environment(), window_ns=window_ns,
                           capacity=capacity)


class TestWindowBucketing:
    def test_half_open_windows_boundary_goes_to_later_window(self):
        store = make_store()
        store.record_at(W - 1, "x", 1, GAUGE, {})
        store.record_at(W, "x", 2, GAUGE, {})  # exactly on the boundary
        series = store.series("x")
        assert series.value_in(0) == 1
        assert series.value_in(1) == 2

    def test_gauge_window_aggregates(self):
        store = make_store()
        for at, value in ((10, 5), (20, 9), (30, 2)):
            store.record_at(at, "x", value, GAUGE, {})
        window = store.series("x").window(0)
        assert (window.last, window.min, window.max, window.count) == (2, 2, 9, 3)

    def test_counter_window_is_the_delta_sum(self):
        store = make_store()
        store.record_at(10, "c", 3, COUNTER, {})
        store.record_at(90, "c", 4, COUNTER, {})
        store.record_at(150, "c", 1, COUNTER, {})
        series = store.series("c")
        assert series.value_in(0) == 7
        assert series.value_in(1) == 1

    def test_out_of_order_sample_lands_in_its_own_window(self):
        """A late sample aimed at an already-sealed (but retained) window
        is folded there, not into the current one."""
        store = make_store()
        store.record_at(250, "x", 9, GAUGE, {})
        store.record_at(50, "x", 1, GAUGE, {})  # out of order, window 0
        series = store.series("x")
        assert series.value_in(0) == 1
        assert series.value_in(2) == 9

    def test_ring_eviction_keeps_capacity_and_counts_drops(self):
        store = make_store(capacity=2)
        for window in range(6):
            store.record_at(window * W + 1, "x", window, GAUGE, {})
        series = store.series("x")
        assert series.nonempty_windows() == [4, 5]
        # A sample below the ring floor is dropped, not resurrected.
        store.record_at(1, "x", 99, GAUGE, {})
        assert series.nonempty_windows() == [4, 5]
        assert series.dropped == 1
        assert store.dropped == 1

    def test_labels_make_distinct_series(self):
        store = make_store()
        store.record_at(10, "x", 1, GAUGE, {"node": "a"})
        store.record_at(10, "x", 2, GAUGE, {"node": "b"})
        assert store.series("x", node="a").value_in(0) == 1
        assert store.series("x", node="b").value_in(0) == 2
        assert [s.labels for s in store.series_named("x")] == [
            (("node", "a"),), (("node", "b"),)]

    def test_listeners_see_windows_sealed_in_order(self):
        store = make_store()
        sealed = []
        store.add_listener(lambda window, _store: sealed.append(window))
        store.record_at(10, "x", 1, GAUGE, {})
        store.record_at(3 * W + 1, "x", 2, GAUGE, {})  # seals 0, 1, 2
        assert sealed == [0, 1, 2]
        store.env.now = 5 * W + 10
        store.catch_up()  # seals 3, 4 (window 5 is still open)
        assert sealed == [0, 1, 2, 3, 4]
        assert store.frontier == 5

    def test_snapshot_is_sorted_and_json_serializable(self):
        store = make_store()
        store.record_at(10, "b", 1, GAUGE, {"n": "2"})
        store.record_at(10, "a", 1, COUNTER, {})
        snapshot = store.snapshot()
        json.dumps(snapshot)
        assert [s["name"] for s in snapshot["series"]] == ["a", "b"]

    def test_validation(self):
        with pytest.raises(ValueError):
            make_store(window_ns=0)
        with pytest.raises(ValueError):
            make_store(capacity=1)


class _Driver:
    """Drives a store + engine through explicit windows."""

    def __init__(self, rules, window_ns=W):
        self.store = make_store(window_ns=window_ns)
        self.engine = MonitorEngine(self.store.env, self.store, rules)

    def put(self, window, name, value, kind=GAUGE, **labels):
        self.store.record_at(window * W + 10, name, value, kind, labels)

    def seal_through(self, window):
        self.store.env.now = (window + 1) * W
        self.store.catch_up()

    @property
    def alerts(self):
        return self.engine.alerts


class TestMonitorRules:
    def test_above_fires_after_n_windows_and_rearms(self):
        driver = _Driver([Rule(name="hot", series="x", kind="above",
                               threshold=10, for_windows=2,
                               severity="error")])
        for window, value in enumerate([20, 20, 20, 5, 20, 20]):
            driver.put(window, "x", value)
        driver.seal_through(5)
        # Fires at window 1 (second consecutive bad), stays latched through
        # window 2, re-arms on the healthy window 3, fires again at 5.
        assert [(a.window, a.rule) for a in driver.alerts] == [
            (1, "hot"), (5, "hot")]
        assert driver.alerts[0].severity == "error"
        assert driver.alerts[0].value == 20.0

    def test_above_skips_empty_windows(self):
        driver = _Driver([Rule(name="hot", series="x", kind="above",
                               threshold=10, for_windows=2)])
        driver.put(0, "x", 20)
        driver.put(3, "x", 20)  # windows 1-2 have no sample
        driver.seal_through(4)
        assert [a.window for a in driver.alerts] == [3]

    def test_below_quorum(self):
        driver = _Driver([Rule(name="quorum", series="up", kind="below",
                               threshold=2, for_windows=1)])
        driver.put(0, "up", 2, node="s0")
        driver.put(1, "up", 1, node="s0")
        driver.seal_through(2)
        assert [(a.window, dict(a.labels)) for a in driver.alerts] == [
            (1, {"node": "s0"})]

    def test_ratio_above_needs_min_total(self):
        rule = Rule(name="aborts", series="bad", kind="ratio_above",
                    threshold=0.5, denominator="good", min_total=10)
        driver = _Driver([rule])
        driver.put(0, "bad", 3, kind=COUNTER)   # 3/4 but total < 10
        driver.put(0, "good", 1, kind=COUNTER)
        driver.put(1, "bad", 9, kind=COUNTER)   # 9/12 >= min_total
        driver.put(1, "good", 3, kind=COUNTER)
        driver.seal_through(2)
        assert [a.window for a in driver.alerts] == [1]
        assert driver.alerts[0].value == 0.75

    def test_stalled_requires_activity(self):
        rule = Rule(name="stall", series="rcp", kind="stalled",
                    for_windows=2, activity="commits")
        driver = _Driver([rule])
        values = [10, 20, 20, 20, 20]
        for window, value in enumerate(values):
            driver.put(window, "rcp", value)
            # Commits happen in every window except 3: the stall only
            # counts windows with activity.
            if window != 3:
                driver.put(window, "commits", 1, kind=COUNTER)
        driver.seal_through(4)
        # rcp is flat from window 2 on; windows 2 and 4 are active-and-flat
        # (3 is idle), so the second counted stall window is 4.
        assert [a.window for a in driver.alerts] == [4]

    def test_silent_watchdog_fires_once_then_rearms(self):
        rule = Rule(name="silent", series="y", kind="silent", for_windows=2)
        driver = _Driver([rule])
        driver.put(0, "y", 1)
        for window in range(6):  # keep windows sealing via another series
            driver.put(window, "tick", 1)
        driver.put(5, "y", 2)  # y recovers in window 5
        driver.seal_through(6)
        fired = [a for a in driver.alerts if a.rule == "silent"]
        assert [a.window for a in fired] == [2]  # once, not every window
        assert fired[0].value == 2.0  # silent for 2 windows

    def test_alert_stream_digest_is_stable(self):
        def once():
            driver = _Driver([Rule(name="hot", series="x", kind="above",
                                   threshold=1)])
            for window in range(4):
                driver.put(window, "x", 5, node="a")
            driver.seal_through(4)
            return driver.engine.digest(), len(driver.alerts)

        first, second = once(), once()
        assert first == second
        # fire-on-entry: latched after the first bad window.
        assert first[1] == 1

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Rule(name="r", series="x", kind="above", severity="fatal")

    def test_alerts_digest_of_empty_stream(self):
        assert len(alerts_digest(())) == 64


def _telemetry_run(duration_s=0.7, warmup_s=0.1):
    db = build_cluster(ClusterConfig.globaldb(
        one_region(), seed=0, trace_enabled=True, timeseries_enabled=True))
    workload = TpccWorkload(TpccConfig(
        warehouses=2, districts_per_warehouse=2, customers_per_district=10,
        items=20, initial_orders_per_district=5, seed=42))
    result = run_workload(db, workload, terminals=4, duration_s=duration_s,
                          warmup_s=warmup_s)
    db.env.series.catch_up()
    return db, result


_CACHED = {}


def telemetry_run():
    if "run" not in _CACHED:
        _CACHED["run"] = _telemetry_run()
    return _CACHED["run"]


class TestLiveTelemetry:
    def test_replication_lag_series_has_dense_windows(self):
        """Acceptance: >= 10 non-empty replication-lag windows per replica
        on a standard traced run."""
        db, _result = telemetry_run()
        lag_series = db.env.series.series_named("repl.lag_records")
        replicas = {name for replica_list in db.replicas.values()
                    for name in (node.name for node in replica_list)}
        assert {dict(s.labels)["node"] for s in lag_series} == replicas
        for series in lag_series:
            assert len(series.nonempty_windows()) >= 10, \
                f"{series.labels}: {series.nonempty_windows()}"

    def test_healthy_run_is_alert_free(self):
        db, _result = telemetry_run()
        assert db.env.monitor.alerts == []
        assert db.env.monitor.windows_evaluated >= 10

    def test_core_series_exist(self):
        db, _result = telemetry_run()
        store = db.env.series
        for name in ("repl.applied_lsn", "repl.applied_ts", "repl.ship_lsn",
                     "ror.rcp", "ror.staleness_ns", "ror.frontier_ts",
                     "ror.skyline_size", "cn.commits",
                     "cluster.node_up", "cluster.shard_replicas_up"):
            assert store.series_named(name), f"no series {name}"
        # gtm.requests only exists when CNs actually RPC the GTM — the
        # one_region default runs GClock, where they don't.

    def test_telemetry_snapshot_round_trips_through_json(self):
        db, _result = telemetry_run()
        snapshot = telemetry_snapshot(db.env)
        clone = json.loads(json.dumps(snapshot))
        assert clone["monitor"]["alerts_digest"] == db.env.monitor.digest()
        assert len(clone["timeseries"]["series"]) == \
            len(db.env.series.all_series())

    def test_telemetry_does_not_perturb_history(self):
        """The pipeline is passive: a telemetry run's history equals the
        bare run's, down to every latency sample."""
        def run_once(telemetry):
            db = build_cluster(ClusterConfig.globaldb(
                one_region(), seed=0, timeseries_enabled=telemetry))
            workload = TpccWorkload(TpccConfig(
                warehouses=2, districts_per_warehouse=2,
                customers_per_district=10, items=20,
                initial_orders_per_district=5, seed=42))
            result = run_workload(db, workload, terminals=4, duration_s=0.3,
                                  warmup_s=0.05)
            return (result.stats.committed, result.stats.aborted,
                    db.env.now, db.gtm.counter,
                    sorted(result.stats.latencies_ns)[:20])

        assert run_once(True) == run_once(False)

    def test_alert_stream_identical_across_fresh_runs(self):
        first_db, _ = _telemetry_run(duration_s=0.3, warmup_s=0.05)
        second_db, _ = _telemetry_run(duration_s=0.3, warmup_s=0.05)
        assert first_db.env.monitor.digest() == second_db.env.monitor.digest()
        assert (first_db.env.series.snapshot()
                == second_db.env.series.snapshot())


class TestStalenessAlert:
    def test_paused_shipping_provokes_staleness_alert(self):
        """Acceptance: a provoked staleness violation fires the
        severity=error staleness-bound alert with the right window and
        node labels."""
        db = build_cluster(ClusterConfig.globaldb(
            one_region(), seed=0, timeseries_enabled=True))
        workload = TpccWorkload(TpccConfig(
            warehouses=2, districts_per_warehouse=2,
            customers_per_district=10, items=20,
            initial_orders_per_district=5, seed=42))
        workload.setup(db)
        env = db.env
        pause_at = {}

        def chaos():
            yield env.timeout(ms(200))
            pause_at["ns"] = env.now
            for shipper in db.shippers:
                if shipper.src == "dn0":
                    shipper.pause()

        env.process(chaos())
        run_workload(db, workload, terminals=4, duration_s=1.0,
                     setup=False)
        env.series.catch_up()

        alerts = db.env.monitor.alerts_with(rule="staleness-bound",
                                            severity="error")
        assert alerts, "paused shipping did not trip the staleness bound"
        window_ns = env.series.window_ns
        shard0 = {node.name for node in db.replicas[0]}
        for alert in alerts:
            labels = dict(alert.labels)
            assert labels["node"] in shard0, alert
            # The violation cannot predate the pause + the 400 ms bound.
            assert alert.window_start_ns >= pause_at["ns"], alert
            assert alert.window >= (pause_at["ns"] + ms(400)) // window_ns - 1
        # Only shard-0 replicas went stale.
        all_staleness_alerts = db.env.monitor.alerts_with(
            rule="staleness-bound")
        assert {dict(a.labels)["node"] for a in all_staleness_alerts} \
            <= shard0
        # The stalled frontier also wakes the silent watchdog eventually.
        silent = db.env.monitor.alerts_with(rule="frontier-silent")
        assert {dict(a.labels)["node"] for a in silent} <= shard0


class TestCriticalPath:
    def test_attribution_sums_exactly_to_e2e_latency(self):
        """Acceptance: per-segment sum equals measured e2e commit latency
        to the nanosecond, for every transaction."""
        db, _result = telemetry_run()
        paths = analyze(db.env.tracer.spans)
        assert len(paths) > 100
        for path in paths:
            assert path.attributed_ns == path.e2e_ns, path.to_dict()
            assert all(value >= 0 for value in path.segments.values()), \
                path.to_dict()
        report = CriticalPathReport(paths)
        assert report.max_attribution_error_ns() == 0

    def test_segment_shares_sum_to_one(self):
        db, _result = telemetry_run()
        report = CriticalPathReport.from_spans(db.env.tracer.spans)
        agg = report.aggregate()
        assert sum(row["share"] for row in agg.values()) == \
            pytest.approx(1.0)
        assert sum(row["dominates"] for row in agg.values()) == \
            len(report.paths)

    def test_analyze_accepts_span_dicts(self):
        db, _result = telemetry_run()
        dicts = [span.to_dict() for span in db.env.tracer.spans]
        from_objects = analyze(db.env.tracer.spans)
        from_dicts = analyze(dicts)
        assert [p.to_dict() for p in from_objects] == \
            [p.to_dict() for p in from_dicts]

    def test_window_filter_matches_report(self):
        db, result = telemetry_run()
        stats = result.stats
        window = (stats.window_start_ns,
                  stats.window_start_ns + stats.window_ns)
        inside = analyze(db.env.tracer.spans, window)
        everything = analyze(db.env.tracer.spans)
        assert 0 < len(inside) <= len(everything)
        assert all(window[0] <= p.end_ns < window[1] for p in inside)

    def test_synthetic_overlap_attribution(self):
        """Overlapping children: commit-wait shadows the rpc it overlaps;
        the residual picks up the uncovered remainder."""
        spans = [
            {"cat": "txn", "name": "begin", "track": "cn", "start_ns": 0,
             "end_ns": 10, "args": {"txid": 1}},
            {"cat": "txn", "name": "execute", "track": "cn", "start_ns": 10,
             "end_ns": 30, "args": {"txid": 1}},
            {"cat": "txn", "name": "commit", "track": "cn", "start_ns": 30,
             "end_ns": 100, "args": {"txid": 1}},
            {"cat": "ts", "name": "commit_wait", "track": "cn",
             "start_ns": 40, "end_ns": 60, "args": {"txid": 1}},
            {"cat": "ts", "name": "commit_rpc", "track": "cn",
             "start_ns": 50, "end_ns": 70, "args": {"txid": 1}},
            # Two parallel flushes; one sticks out past the rpc.
            {"cat": "wal", "name": "flush", "track": "dn0", "start_ns": 55,
             "end_ns": 80, "args": {"txid": 1}},
            {"cat": "wal", "name": "flush", "track": "dn1", "start_ns": 60,
             "end_ns": 75, "args": {"txid": 1}},
        ]
        (path,) = analyze(spans)
        assert path.segments == {
            SEGMENTS[0]: 10,   # begin
            SEGMENTS[1]: 20,   # execute
            SEGMENTS[2]: 20,   # commit-wait [40,60)
            SEGMENTS[3]: 10,   # rpc exclusive [60,70)
            SEGMENTS[4]: 10,   # flush exclusive [70,80)
            SEGMENTS[5]: 30,   # residual [30,40) + [80,100)
        }
        assert path.attributed_ns == path.e2e_ns == 100


class TestDashboard:
    def _dashboard(self):
        db, result = telemetry_run()
        return Dashboard(telemetry=telemetry_snapshot(db.env),
                         spans=[span.to_dict()
                                for span in db.env.tracer.spans],
                         title="test run")

    def test_text_render(self):
        text = self._dashboard().render_text()
        assert "test run" in text
        assert "repl.lag_records" in text
        assert "Critical path" in text

    def test_html_render_is_self_contained(self):
        html_out = self._dashboard().render_html()
        assert html_out.startswith("<!DOCTYPE html>")
        assert "<svg" in html_out and "polyline" in html_out
        assert "repl.lag_records" in html_out
        assert "http://" not in html_out and "https://" not in html_out

    def test_error_alert_gate(self):
        dashboard = self._dashboard()
        assert dashboard.error_alerts() == []
        dashboard.telemetry["monitor"]["alerts"].append({
            "rule": "staleness-bound", "severity": "error", "series": "s",
            "labels": {}, "window": 3, "window_start_ns": 0,
            "window_end_ns": 1, "value": 2.0, "threshold": 1.0})
        assert len(dashboard.error_alerts()) == 1

    def test_empty_dashboard_renders(self):
        dashboard = Dashboard()
        assert "no telemetry captured" in dashboard.render_text()
        assert "<!DOCTYPE html>" in dashboard.render_html()


class TestZeroCommitGuards:
    def test_workload_stats_empty_percentiles(self):
        from repro.workloads.driver import WorkloadStats

        stats = WorkloadStats()
        assert stats.latency_percentile_ms(50) == 0.0
        assert stats.mean_latency_ms == 0.0
        assert stats.abort_rate == 0.0
        summary = stats.summary()
        assert summary["committed"] == 0
        assert summary["p99_ms"] == 0.0
        assert WorkloadStats._pick([], 99) == 0

    def test_zero_commit_run_report(self):
        """A traced run with no terminals commits nothing; every report
        path must return zeros instead of raising."""
        from repro.obs.report import RunReport

        db = build_cluster(ClusterConfig.globaldb(
            one_region(), seed=0, metrics_enabled=True, trace_enabled=True))
        workload = TpccWorkload(TpccConfig(
            warehouses=1, districts_per_warehouse=1,
            customers_per_district=5, items=10,
            initial_orders_per_district=2, seed=7))
        result = run_workload(db, workload, terminals=0, duration_s=0.05)
        assert result.stats.committed == 0
        assert result.summary()  # must not raise
        report = RunReport.capture(db, result)
        assert report.e2e_p50_ns() == 0
        assert report.median_transaction() is None
        assert report.breakdown_error() == 0.0
        assert report.render()  # must not raise
        assert report.to_dict()["traced_transactions"] == 0
        dashboard = Dashboard(spans=[span.to_dict()
                                     for span in db.env.tracer.spans])
        assert "no complete traced transactions" in dashboard.render_text()


class TestBenchHistory:
    def test_run_perf_appends_history_record(self, tmp_path, monkeypatch):
        import repro.bench.perf as perf

        monkeypatch.setattr(perf, "check_determinism",
                            lambda: {"ok": True, "digest": "d" * 64,
                                     "spans": 1, "committed": 1})
        monkeypatch.setattr(perf, "run_scenario", lambda scale: {
            "scale": "quick", "wall_s": 0.1, "events": 10,
            "events_per_sec": 100.0, "committed": 5,
            "committed_txns_per_wall_s": 50.0, "peak_rss_kb": 1234})
        out = tmp_path / "BENCH_PERF.json"
        history = tmp_path / "BENCH_HISTORY.jsonl"
        for stamp in ("run-1", "run-2"):
            perf.run_perf("quick", out_path=str(out),
                          history_path=str(history), stamp=stamp)
        lines = history.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert [record["stamp"] for record in records] == ["run-1", "run-2"]
        assert records[0] == {
            "stamp": "run-1", "scale": "quick", "events_per_sec": 100.0,
            "committed_txns_per_wall_s": 50.0, "peak_rss_kb": 1234,
            "digest_ok": True}
        # The full report is still overwritten in place.
        assert json.loads(out.read_text())["determinism"]["ok"] is True

    def test_history_disabled_with_none(self, tmp_path, monkeypatch):
        import repro.bench.perf as perf

        monkeypatch.setattr(perf, "check_determinism",
                            lambda: {"ok": True, "digest": "d" * 64,
                                     "spans": 1, "committed": 1})
        monkeypatch.setattr(perf, "run_scenario", lambda scale: {
            "scale": "quick", "wall_s": 0.1, "events": 10,
            "events_per_sec": 100.0, "committed": 5,
            "committed_txns_per_wall_s": 50.0, "peak_rss_kb": 1234})
        out = tmp_path / "BENCH_PERF.json"
        perf.run_perf("quick", out_path=str(out), history_path=None)
        assert not (tmp_path / "BENCH_HISTORY.jsonl").exists()
