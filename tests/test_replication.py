"""Unit tests for replication: shipper, replayer, replica store, quorums."""

from repro.replication import AckTracker, LogShipper, ReplicationPolicy, ShipperConfig
from repro.replication.replayer import Replayer
from repro.replication.replica import ReplicaStore
from repro.sim import Environment, ms, us
from repro.sim.network import Network
from repro.storage import (
    ColumnDef,
    RedoCommit,
    RedoHeartbeat,
    RedoInsert,
    RedoPendingCommit,
    Snapshot,
    StorageEngine,
    TableSchema,
)


def schema():
    return TableSchema(name="t", columns=[ColumnDef("k", "int"),
                                          ColumnDef("v", "text")],
                       primary_key=("k",))


def make_pair(shipper_config=None, latency=ms(10)):
    env = Environment()
    network = Network(env)
    network.add_endpoint("primary", "east")
    network.add_endpoint("replica", "west")
    network.set_link("primary", "replica", latency_ns=latency)
    engine = StorageEngine(env, "primary")
    engine.create_table(schema())
    store = ReplicaStore(env, "replica")
    replayer = Replayer(env, store)

    def replica_handler(message):
        kind, _src, records = message.payload
        assert kind == "redo_batch"
        replayer.enqueue(records)
        network.send("replica", "primary",
                     ("redo_ack", "replica", records[-1].lsn), size_bytes=64)

    network.set_handler("replica", replica_handler)
    acks = AckTracker(env, "east", {"replica": "west"})

    def primary_handler(message):
        kind, name, lsn = message.payload
        assert kind == "redo_ack"
        acks.on_ack(name, lsn)

    network.set_handler("primary", primary_handler)
    shipper = LogShipper(env, network, engine.wal, "primary", "replica",
                         config=shipper_config or ShipperConfig.optimized())
    return env, network, engine, store, replayer, shipper, acks


def commit_row(engine, txid, key, value, ts):
    engine.begin(txid)
    engine.insert(txid, "t", {"k": key, "v": value})
    engine.log_pending_commit(txid)
    engine.commit(txid, ts)


class TestShipping:
    def test_records_reach_replica(self):
        env, _net, engine, store, _replayer, _shipper, _acks = make_pair()
        commit_row(engine, 1, 1, "a", ts=100)
        env.run(until=ms(50))
        assert store.read("t", (1,), Snapshot(100)) == {"k": 1, "v": "a"}
        assert store.max_commit_ts == 100

    def test_apply_is_idempotent_on_duplicate_lsn(self):
        env, _net, engine, store, replayer, _shipper, _acks = make_pair()
        commit_row(engine, 1, 1, "a", ts=100)
        env.run(until=ms(50))
        before = store.records_applied
        replayer.enqueue(engine.wal.records_from(0))  # duplicate catch-up
        env.run(until=ms(100))
        assert store.records_applied == before  # all duplicates skipped

    def test_flush_respects_interval(self):
        env, _net, engine, store, _replayer, shipper, _acks = make_pair()
        commit_row(engine, 1, 1, "a", ts=100)
        env.run(until=us(100))
        assert shipper.flushes == 0  # still inside the batching window
        env.run(until=ms(30))
        assert shipper.flushes >= 1

    def test_compression_reduces_wire_bytes(self):
        env, _net, engine, _store, _rep, shipper, _acks = make_pair(
            ShipperConfig.optimized())
        for i in range(50):
            commit_row(engine, i + 1, i, "v" * 100, ts=100 + i)
        env.run(until=ms(100))
        assert shipper.wire_bytes_total < shipper.payload_bytes_total
        assert shipper.compression_ratio_achieved() > 2.0

    def test_baseline_transport_ships_raw_bytes(self):
        env, _net, engine, _store, _rep, shipper, _acks = make_pair(
            ShipperConfig.baseline())
        for i in range(20):
            commit_row(engine, i + 1, i, "v" * 100, ts=100 + i)
        env.run(until=ms(100))
        assert shipper.wire_bytes_total == shipper.payload_bytes_total

    def test_paused_shipper_holds_records(self):
        env, _net, engine, store, _rep, shipper, _acks = make_pair()
        shipper.pause()
        commit_row(engine, 1, 1, "a", ts=100)
        env.run(until=ms(100))
        assert store.max_commit_ts == 0
        shipper.resume()
        env.run(until=ms(200))
        assert store.max_commit_ts == 100


class TestReplicaStore:
    def test_pending_commit_blocks_reader_until_resolution(self):
        env, _net, engine, store, _rep, _shipper, _acks = make_pair()
        # Manually apply an in-flight transaction's records.
        store.catalog.create_table(schema(), ddl_ts=0)
        store._tables["t"] = __import__(
            "repro.storage.heap", fromlist=["HeapTable"]).HeapTable("t")
        insert = RedoInsert(txid=9, table="t", key=(5,), row={"k": 5, "v": "x"})
        insert.lsn = 1
        pending = RedoPendingCommit(txid=9)
        pending.lsn = 2
        store.apply(insert)
        store.apply(pending)
        outcomes = []

        def reader():
            row = yield from store.read_waiting("t", (5,), Snapshot(10**15))
            outcomes.append((row, env.now))

        env.process(reader())
        env.run(until=ms(5))
        assert outcomes == []  # blocked on the unresolved transaction

        def resolver():
            yield env.timeout(ms(5))
            commit = RedoCommit(txid=9, commit_ts=123)
            commit.lsn = 3
            store.apply(commit)

        env.process(resolver())
        env.run(until=ms(50))
        assert outcomes == [({"k": 5, "v": "x"}, ms(10))]

    def test_abort_rolls_back_replica_state(self):
        env, _net, engine, store, _rep, _shipper, _acks = make_pair()
        commit_row(engine, 1, 1, "a", ts=100)
        engine.begin(2)
        engine.update(2, "t", (1,), {"v": "b"})
        engine.abort(2)
        env.run(until=ms(60))
        assert store.read("t", (1,), Snapshot(10**15)) == {"k": 1, "v": "a"}
        assert store.unresolved_count() == 0

    def test_heartbeat_advances_frontier_without_data(self):
        env, _net, engine, store, _rep, _shipper, _acks = make_pair()
        engine.heartbeat(5_000)
        env.run(until=ms(60))
        assert store.max_commit_ts == 5_000

    def test_two_phase_records_replay(self):
        env, _net, engine, store, _rep, _shipper, _acks = make_pair()
        engine.begin(3)
        engine.insert(3, "t", {"k": 7, "v": "p"})
        engine.prepare(3)
        env.run(until=ms(40))
        assert store.unresolved_count() == 1  # prepared, in doubt
        engine.commit_prepared(3, commit_ts=200)
        env.run(until=ms(100))
        assert store.unresolved_count() == 0
        assert store.read("t", (7,), Snapshot(200)) is not None

    def test_replica_update_chains_versions(self):
        env, _net, engine, store, _rep, _shipper, _acks = make_pair()
        commit_row(engine, 1, 1, "a", ts=100)
        engine.begin(2)
        engine.update(2, "t", (1,), {"v": "b"})
        engine.log_pending_commit(2)
        engine.commit(2, 200)
        env.run(until=ms(100))
        assert store.read("t", (1,), Snapshot(150))["v"] == "a"
        assert store.read("t", (1,), Snapshot(200))["v"] == "b"

    def test_replica_delete(self):
        env, _net, engine, store, _rep, _shipper, _acks = make_pair()
        commit_row(engine, 1, 1, "a", ts=100)
        engine.begin(2)
        engine.delete(2, "t", (1,))
        engine.log_pending_commit(2)
        engine.commit(2, 200)
        env.run(until=ms(100))
        assert store.read("t", (1,), Snapshot(150)) is not None
        assert store.read("t", (1,), Snapshot(250)) is None


class TestReplayer:
    def test_replay_costs_time(self):
        env = Environment()
        store = ReplicaStore(env, "r")
        replayer = Replayer(env, store, apply_ns_per_record=us(10), parallelism=1)
        records = []
        for i in range(100):
            record = RedoHeartbeat(txid=0, commit_ts=i + 1)
            record.lsn = i + 1
            records.append(record)
        replayer.enqueue(records)
        env.run(until=us(500))
        assert store.max_commit_ts == 0  # still applying (needs 1 ms)
        env.run(until=ms(2))
        assert store.max_commit_ts == 100

    def test_parallelism_speeds_up_replay(self):
        def replay_time(parallelism):
            env = Environment()
            store = ReplicaStore(env, "r")
            replayer = Replayer(env, store, apply_ns_per_record=us(10),
                                parallelism=parallelism)
            records = []
            for i in range(1000):
                record = RedoHeartbeat(txid=0, commit_ts=i + 1)
                record.lsn = i + 1
                records.append(record)
            replayer.enqueue(records)
            env.run()
            return env.now

        assert replay_time(8) * 4 < replay_time(1)


class TestQuorum:
    def test_async_policy_never_waits(self):
        env = Environment()
        tracker = AckTracker(env, "east", {"r1": "east", "r2": "west"})
        event = tracker.wait_for(100, ReplicationPolicy.async_())
        assert event.triggered

    def test_quorum_waits_for_k_acks(self):
        env = Environment()
        tracker = AckTracker(env, "east", {"r1": "east", "r2": "west"})
        event = tracker.wait_for(10, ReplicationPolicy.quorum(2))
        assert not event.triggered
        tracker.on_ack("r1", 10)
        assert not event.triggered
        tracker.on_ack("r2", 15)
        assert event.triggered

    def test_same_city_quorum_ignores_remote_acks(self):
        env = Environment()
        tracker = AckTracker(env, "east", {"r1": "east", "r2": "west"})
        event = tracker.wait_for(10, ReplicationPolicy.same_city_quorum(1))
        tracker.on_ack("r2", 99)  # remote ack: not sufficient
        assert not event.triggered
        tracker.on_ack("r1", 10)
        assert event.triggered

    def test_remote_quorum_requires_cross_region_ack(self):
        env = Environment()
        tracker = AckTracker(env, "east", {"r1": "east", "r2": "west"})
        event = tracker.wait_for(10, ReplicationPolicy.remote_quorum(1))
        tracker.on_ack("r1", 10)  # same region only
        assert not event.triggered
        tracker.on_ack("r2", 10)
        assert event.triggered

    def test_already_satisfied_quorum_fires_immediately(self):
        env = Environment()
        tracker = AckTracker(env, "east", {"r1": "east"})
        tracker.on_ack("r1", 50)
        event = tracker.wait_for(40, ReplicationPolicy.quorum(1))
        assert event.triggered

    def test_stale_ack_does_not_regress(self):
        env = Environment()
        tracker = AckTracker(env, "east", {"r1": "east"})
        tracker.on_ack("r1", 50)
        tracker.on_ack("r1", 30)
        assert tracker.acked["r1"] == 50


class TestEndToEndSyncCommit:
    def test_sync_commit_waits_for_replica_ack(self):
        env, _net, engine, _store, _rep, _shipper, acks = make_pair(latency=ms(20))
        commit_row(engine, 1, 1, "a", ts=100)
        lsn = engine.wal.last_lsn
        event = acks.wait_for(lsn, ReplicationPolicy.quorum(1))
        assert not event.triggered

        def waiter():
            yield event
            return env.now

        when = env.run(until=env.process(waiter()))
        # One-way shipping (>=20ms incl. batching) plus the ack trip back.
        assert when >= ms(40)
