"""Primary-failure and promotion tests (§IV's availability story)."""

import pytest

from repro import ClusterConfig, TransactionAborted, build_cluster, one_region, three_city
from repro.sim.units import ms


def build_failover_db(topology=None, **overrides):
    overrides.setdefault("auto_failover", True)
    overrides.setdefault("failover_grace_ns", ms(200))
    return build_cluster(ClusterConfig.globaldb(topology or one_region(),
                                                **overrides))


LOADED_ROWS = 48


def load_accounts(db, rows=LOADED_ROWS):
    session = db.session()
    session.create_table("accounts", [("id", "int"), ("balance", "int")],
                         primary_key=["id"])
    session.begin()
    for i in range(rows):
        session.insert("accounts", {"id": i, "balance": 100})
    session.commit()
    db.run_for(0.3)
    return session


def key_on_shard(db, shard):
    """A *loaded* key homed on ``shard``."""
    for i in range(LOADED_ROWS):
        if db.shard_map.shard_for_key("accounts", (i,)) == shard:
            return i
    raise AssertionError("no loaded key found for shard")


class TestReplicaServiceDuringOutage:
    def test_reads_survive_primary_failure_without_promotion(self):
        """Paper: replicas keep serving read-only queries while the primary
        is down (even before/without promotion)."""
        db = build_cluster(ClusterConfig.globaldb(three_city()))
        load_accounts(db)
        victim_shard = 0
        db.primaries[victim_shard].fail()
        db.run_for(0.4)  # metrics notice
        key = key_on_shard(db, victim_shard)
        reader = db.session(region=db.primaries[1].region)
        row = reader.read_only("accounts", (key,))
        assert row is not None and row["balance"] == 100

    def test_writes_to_dead_primary_abort_not_hang(self):
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        session = load_accounts(db)
        victim_shard = 2
        db.primaries[victim_shard].fail()
        key = key_on_shard(db, victim_shard)
        session.begin()
        with pytest.raises(TransactionAborted):
            session.update("accounts", (key,), {"balance": 1})
        assert not session.in_txn  # the abort cleaned up the context


class TestPromotion:
    def test_promotion_restores_writes(self):
        db = build_failover_db()
        session = load_accounts(db)
        victim_shard = 1
        old_primary = db.primaries[victim_shard]
        old_name = old_primary.name
        old_primary.fail()
        db.run_for(1.5)  # grace + promotion + placement push
        assert db.failover.events, "no failover event recorded"
        event = db.failover.events[0]
        assert event.shard == victim_shard
        assert event.old_primary == old_name
        new_primary = db.primaries[victim_shard]
        assert new_primary.name != old_name
        assert new_primary.is_primary
        # Writes to the shard work again.
        key = key_on_shard(db, victim_shard)
        session.begin()
        session.update("accounts", (key,), {"balance": 555})
        session.commit()
        session.begin()
        assert session.read("accounts", (key,))["balance"] == 555
        session.commit()

    def test_promotion_picks_most_caught_up_replica(self):
        db = build_failover_db()
        load_accounts(db)
        victim_shard = 0
        # Handicap one replica: pause its shipping so it lags.
        laggard = db.replicas[victim_shard][0]
        for shipper in db.shippers:
            if shipper.dst == laggard.name:
                shipper.pause()
        session = db.session()
        key = key_on_shard(db, victim_shard)
        for value in range(5):
            session.begin()
            session.update("accounts", (key,), {"balance": value})
            session.commit()
        db.run_for(0.3)
        db.primaries[victim_shard].fail()
        db.run_for(1.5)
        event = db.failover.events[0]
        assert event.new_primary != laggard.name

    def test_surviving_replicas_rebuilt_and_replicating(self):
        db = build_failover_db()
        session = load_accounts(db)
        victim_shard = 1
        db.primaries[victim_shard].fail()
        db.run_for(1.5)
        key = key_on_shard(db, victim_shard)
        session.begin()
        session.update("accounts", (key,), {"balance": 777})
        commit_ts = session.commit()
        db.run_for(1.0)
        for replica in db.replicas[victim_shard]:
            if replica.failed:
                continue
            from repro.storage.snapshot import Snapshot
            row = replica.store.read("accounts", (key,), Snapshot(commit_ts))
            assert row is not None and row["balance"] == 777

    def test_rcp_recovers_after_promotion(self):
        db = build_failover_db()
        session = load_accounts(db)
        db.primaries[0].fail()
        db.run_for(1.5)
        rcp_before = session.rcp
        db.run_for(0.5)
        assert session.rcp > rcp_before

    def test_async_failover_can_lose_tail_commits(self):
        """The paper's acknowledged trade-off: asynchronous replication can
        lose the unreplicated tail on failover. Stop shipping entirely,
        commit, kill the primary: the committed value must be gone after
        promotion — and the event must report the loss window."""
        db = build_failover_db()
        session = load_accounts(db)
        victim_shard = 0
        key = key_on_shard(db, victim_shard)
        for shipper in db.shippers:
            if shipper.src == db.primaries[victim_shard].name:
                shipper.pause()
        session.begin()
        session.update("accounts", (key,), {"balance": 12345})
        session.commit()
        db.primaries[victim_shard].fail()
        db.run_for(1.5)
        event = db.failover.events[0]
        assert event.lost_commit_ts_window > 0
        reader = db.session()
        row = reader.read_only("accounts", (key,))
        assert row["balance"] == 100  # the tail write is gone

    def test_no_promotion_when_all_replicas_dead(self):
        db = build_failover_db()
        load_accounts(db)
        for replica in db.replicas[0]:
            replica.fail()
        db.primaries[0].fail()
        db.run_for(1.5)
        assert not db.failover.events
        assert db.primaries[0].failed  # shard simply stays down

    def test_in_doubt_transactions_aborted_on_promotion(self):
        """A transaction mid-commit when the primary dies is in doubt on
        the replica (PENDING_COMMIT replayed, outcome lost): promotion
        aborts it and readers unblock."""
        db = build_failover_db()
        load_accounts(db)
        victim_shard = 0
        key = key_on_shard(db, victim_shard)
        primary = db.primaries[victim_shard]
        # Forge the in-doubt state: pending logged, no outcome, then death.
        txid = 999_999
        primary.engine.begin(txid)
        primary.engine.update(txid, "accounts", (key,), {"balance": 1})
        primary.engine.log_pending_commit(txid)
        db.run_for(0.3)  # records reach replicas
        primary.fail()
        db.run_for(1.5)
        event = db.failover.events[0]
        assert event.in_doubt_aborted >= 1
        reader = db.session()
        row = reader.read_only("accounts", (key,))
        assert row["balance"] == 100  # the in-doubt write rolled back


class TestPromotionRcpGuard:
    def test_stale_promoted_replica_covers_advertised_rcp(self):
        """ROR safety on failover: CNs advertise strongly-consistent
        replica reads up to their RCP. If the only surviving replica was
        partitioned while the RCP advanced past its redo frontier,
        promotion must advance the new primary's frontier to the
        advertised RCP (redo heartbeat) so the shard group never claims
        less coverage than clients were already promised."""
        db = build_failover_db(three_city())
        session = load_accounts(db)
        shard = 0
        laggard = db.replicas[shard][0]
        healthy = db.replicas[shard][1]
        # Partition the laggard: the RCP collector skips unreachable
        # replicas, so the RCP keeps advancing while the laggard's redo
        # frontier stalls.
        db.network.set_endpoint_up(laggard.name, False)
        db.run_for(0.3)
        key = key_on_shard(db, shard)
        for step in range(3):
            session.begin()
            session.update("accounts", (key,), {"balance": 200 + step})
            session.commit()
            db.run_for(0.1)
        db.run_for(0.3)
        stalled_frontier = laggard.store.max_commit_ts
        advertised_rcp = max(cn.rcp_state.rcp for cn in db.cns)
        assert advertised_rcp > stalled_frontier, \
            "precondition: the RCP must have advanced past the laggard"
        # Heal the partition, then lose the primary AND the caught-up
        # replica: the stale laggard is the only promotion candidate.
        db.network.set_endpoint_up(laggard.name, True)
        healthy.fail()
        db.primaries[shard].fail()
        db.run_for(1.5)
        events = [event for event in db.failover.events
                  if event.shard == shard]
        assert events, "no failover event for the shard"
        event = events[0]
        assert event.new_primary == laggard.name
        assert event.rcp_gap_healed > 0, \
            "the promotion should have recorded a healed RCP gap"
        assert db.primaries[shard].engine.last_commit_ts >= advertised_rcp
        # Reads keep working against the promoted (previously stale) node.
        reader = db.session()
        row = reader.read_only("accounts", (key,))
        assert row is not None

    def test_caught_up_promotion_heals_nothing(self):
        """The guard must be a no-op when the promoted replica's frontier
        already covers every CN's RCP (the common case)."""
        db = build_failover_db()
        load_accounts(db)
        db.primaries[0].fail()
        db.run_for(1.5)
        event = db.failover.events[0]
        assert event.rcp_gap_healed == 0
