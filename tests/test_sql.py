"""Tests for the SQL front-end: lexer, parser, and end-to-end execution."""

import pytest

from repro import ClusterConfig, build_cluster, one_region
from repro.errors import SqlError
from repro.sql.ast_nodes import (
    Aggregate,
    BinaryOp,
    CreateTable,
    Insert,
    Param,
    Select,
    Update,
)
from repro.sql.executor import columns_in, equality_bindings, evaluate
from repro.sql.lexer import tokenize
from repro.sql.parser import parse


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [token.value for token in tokens[:-1]] == ["SELECT", "FROM",
                                                          "WHERE"]

    def test_identifiers_lowercased(self):
        tokens = tokenize("MyTable my_col")
        assert [token.value for token in tokens[:-1]] == ["mytable", "my_col"]

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].value == 42
        assert tokens[1].value == pytest.approx(3.14)

    def test_strings_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string_rejected(self):
        with pytest.raises(SqlError):
            tokenize("'oops")

    def test_two_char_operators(self):
        tokens = tokenize("a <= b <> c")
        values = [token.value for token in tokens[:-1]]
        assert "<=" in values and "<>" in values

    def test_unexpected_character(self):
        with pytest.raises(SqlError):
            tokenize("a @ b")


class TestParser:
    def test_select_star(self):
        statement = parse("SELECT * FROM t")
        assert isinstance(statement, Select)
        assert statement.table == "t"
        assert statement.items[0].expr == "*"

    def test_select_with_where_order_limit(self):
        statement = parse(
            "SELECT a, b FROM t WHERE a = 1 AND b > 2 ORDER BY b DESC LIMIT 5")
        assert statement.order_by == "b"
        assert statement.descending
        assert statement.limit == 5
        assert isinstance(statement.where, BinaryOp)
        assert statement.where.op == "AND"

    def test_select_aggregates(self):
        statement = parse("SELECT COUNT(*), SUM(x) FROM t")
        assert all(isinstance(item.expr, Aggregate) for item in statement.items)

    def test_insert_multi_row(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, Insert)
        assert len(statement.rows) == 2

    def test_insert_width_mismatch_rejected(self):
        with pytest.raises(SqlError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_update_with_params(self):
        statement = parse("UPDATE t SET a = a + ?, b = ? WHERE id = ?")
        assert isinstance(statement, Update)
        assert len(statement.assignments) == 2
        params = [expr for _col, expr in statement.assignments]
        assert isinstance(params[1], Param)

    def test_create_table_inline_pk(self):
        statement = parse("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        assert isinstance(statement, CreateTable)
        assert statement.primary_key == ("id",)

    def test_create_table_composite_pk_and_distribution(self):
        statement = parse(
            "CREATE TABLE t (a INT, b INT, v TEXT, PRIMARY KEY (a, b)) "
            "DISTRIBUTE BY HASH(a)")
        assert statement.primary_key == ("a", "b")
        assert statement.distribution == "hash"
        assert statement.distribution_column == "a"

    def test_create_table_replicated(self):
        statement = parse("CREATE TABLE t (id INT PRIMARY KEY) "
                          "DISTRIBUTE BY REPLICATION")
        assert statement.distribution == "replicated"

    def test_create_table_without_pk_rejected(self):
        with pytest.raises(SqlError):
            parse("CREATE TABLE t (a INT)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT * FROM t garbage extra")

    def test_operator_precedence(self):
        statement = parse("SELECT * FROM t WHERE a = 1 + 2 * 3")
        comparison = statement.where
        value = evaluate(comparison.right, {}, ())
        assert value == 7

    def test_parenthesized_expression(self):
        statement = parse("SELECT * FROM t WHERE a = (1 + 2) * 3")
        assert evaluate(statement.where.right, {}, ()) == 9


class TestExpressionEvaluation:
    def test_null_comparison_is_false(self):
        expr = parse("SELECT * FROM t WHERE a = 1").where
        assert evaluate(expr, {"a": None}, ()) is False

    def test_params_bind_in_order(self):
        expr = parse("SELECT * FROM t WHERE a = ? AND b = ?").where
        assert evaluate(expr, {"a": 1, "b": 2}, (1, 2)) is True
        assert evaluate(expr, {"a": 1, "b": 2}, (1, 3)) is False

    def test_columns_in(self):
        expr = parse("SELECT * FROM t WHERE a + b = c").where
        assert columns_in(expr) == {"a", "b", "c"}

    def test_equality_bindings_extraction(self):
        expr = parse("SELECT * FROM t WHERE a = 1 AND 2 = b AND c > 3").where
        assert equality_bindings(expr, ()) == {"a": 1, "b": 2}

    def test_or_does_not_produce_bindings(self):
        expr = parse("SELECT * FROM t WHERE a = 1 OR b = 2").where
        assert equality_bindings(expr, ()) == {}


@pytest.fixture()
def db_session():
    db = build_cluster(ClusterConfig.globaldb(one_region()))
    session = db.session()
    session.execute("CREATE TABLE users (id INT PRIMARY KEY, name TEXT, "
                    "age INT, city TEXT)")
    session.execute("INSERT INTO users (id, name, age, city) VALUES "
                    "(1, 'ann', 34, 'berlin'), (2, 'bob', 28, 'paris'), "
                    "(3, 'cho', 41, 'berlin'), (4, 'dee', 28, 'tokyo')")
    db.run_for(0.2)
    return db, session


class TestEndToEnd:
    def test_point_select(self, db_session):
        _db, session = db_session
        rows = session.execute("SELECT * FROM users WHERE id = 2")
        assert rows == [{"id": 2, "name": "bob", "age": 28, "city": "paris"}]

    def test_point_select_with_params(self, db_session):
        _db, session = db_session
        rows = session.execute("SELECT name FROM users WHERE id = ?", (3,))
        assert rows == [{"name": "cho"}]

    def test_predicate_scan(self, db_session):
        _db, session = db_session
        rows = session.execute(
            "SELECT name FROM users WHERE city = 'berlin' ORDER BY name")
        assert [row["name"] for row in rows] == ["ann", "cho"]

    def test_aggregates(self, db_session):
        _db, session = db_session
        result = session.execute(
            "SELECT COUNT(*) AS n, AVG(age) AS mean FROM users")
        assert result == [{"n": 4, "mean": pytest.approx(32.75)}]

    def test_order_and_limit(self, db_session):
        _db, session = db_session
        rows = session.execute(
            "SELECT id FROM users ORDER BY age DESC LIMIT 2")
        assert [row["id"] for row in rows] == [3, 1]

    def test_update_rmw_pushdown(self, db_session):
        _db, session = db_session
        result = session.execute(
            "UPDATE users SET age = age + 1 WHERE id = 1")
        assert result["status"] == "updated"
        assert result["count"] == 1
        assert result["commit_ts"] > 0
        rows = session.execute("SELECT age FROM users WHERE id = 1")
        assert rows[0]["age"] == 35

    def test_update_by_predicate(self, db_session):
        _db, session = db_session
        result = session.execute(
            "UPDATE users SET city = 'munich' WHERE city = 'berlin'")
        assert result["count"] == 2

    def test_update_cross_column_expression(self, db_session):
        _db, session = db_session
        session.execute("UPDATE users SET age = id * 10 WHERE id = 4")
        rows = session.execute("SELECT age FROM users WHERE id = 4")
        assert rows[0]["age"] == 40

    def test_delete(self, db_session):
        _db, session = db_session
        result = session.execute("DELETE FROM users WHERE age = 28")
        assert result["count"] == 2
        remaining = session.execute("SELECT COUNT(*) AS n FROM users")
        assert remaining[0]["n"] == 2

    def test_explicit_transaction(self, db_session):
        _db, session = db_session
        session.execute("BEGIN")
        session.execute("INSERT INTO users (id, name, age, city) VALUES "
                        "(9, 'zed', 50, 'oslo')")
        session.execute("ROLLBACK")
        rows = session.execute("SELECT * FROM users WHERE id = 9")
        assert rows == []

    def test_transaction_commit(self, db_session):
        _db, session = db_session
        session.execute("BEGIN")
        session.execute("UPDATE users SET age = 99 WHERE id = 1")
        session.execute("COMMIT")
        assert session.execute("SELECT age FROM users WHERE id = 1") == \
            [{"age": 99}]

    def test_create_index_via_sql(self, db_session):
        db, session = db_session
        session.execute("CREATE INDEX ON users (city)")
        for primary in db.primaries:
            assert primary.engine.table("users").has_index("city")

    def test_replicated_table_via_sql(self, db_session):
        db, session = db_session
        session.execute("CREATE TABLE config (k TEXT PRIMARY KEY, v TEXT) "
                        "DISTRIBUTE BY REPLICATION")
        session.execute("INSERT INTO config (k, v) VALUES ('mode', 'on')")
        rows = session.execute("SELECT v FROM config WHERE k = 'mode'")
        assert rows == [{"v": "on"}]
        assert db.shard_map.is_replicated("config")

    def test_duplicate_insert_raises(self, db_session):
        _db, session = db_session
        from repro.errors import TransactionAborted
        with pytest.raises(TransactionAborted):
            session.execute("INSERT INTO users (id, name, age, city) VALUES "
                            "(1, 'dup', 1, 'x')")

    def test_prepared_statement_cache(self, db_session):
        _db, session = db_session
        session.execute("SELECT name FROM users WHERE id = ?", (1,))
        size_after_first = len(session._statement_cache)
        for i in (2, 3, 4):
            session.execute("SELECT name FROM users WHERE id = ?", (i,))
        assert len(session._statement_cache) == size_after_first
