"""Property-based vacuum tests: reclamation never changes what any
snapshot at or above the horizon can read."""

from hypothesis import given, settings, strategies as st

from repro.sim import Environment
from repro.storage import ColumnDef, Snapshot, StorageEngine, TableSchema


def build_history(operations):
    """Apply a random operation history; return (engine, max_ts)."""
    env = Environment()
    engine = StorageEngine(env, "dn")
    engine.create_table(TableSchema(
        "t", [ColumnDef("k", "int"), ColumnDef("v", "int")], ("k",)))
    ts = 0
    txid = 0
    for key, op, commit in operations:
        txid += 1
        ts += 10
        engine.begin(txid)
        did_something = False
        if op == "upsert":
            if engine.update(txid, "t", (key,), {"v": ts}) is not None:
                did_something = True
            else:
                engine.insert(txid, "t", {"k": key, "v": ts})
                did_something = True
        else:  # delete
            did_something = engine.delete(txid, "t", (key,))
        if commit and did_something:
            engine.log_pending_commit(txid)
            engine.commit(txid, ts)
        else:
            engine.abort(txid)
    return engine, ts


operation_strategy = st.lists(
    st.tuples(st.integers(1, 4),
              st.sampled_from(["upsert", "delete"]),
              st.booleans()),
    min_size=1, max_size=30)


class TestVacuumProperties:
    @settings(max_examples=60, deadline=None)
    @given(operations=operation_strategy,
           retention_steps=st.integers(0, 30))
    def test_reads_above_horizon_unchanged(self, operations, retention_steps):
        engine, max_ts = build_history(operations)
        retention = retention_steps * 10
        horizon = engine.last_commit_ts - retention
        probe_points = [ts for ts in range(0, max_ts + 11, 10)
                        if ts >= horizon]
        before = {
            (key, ts): engine.read("t", (key,), Snapshot(ts))
            for key in range(1, 5) for ts in probe_points
        }
        engine.vacuum(retention_ns=retention)
        after = {
            (key, ts): engine.read("t", (key,), Snapshot(ts))
            for key in range(1, 5) for ts in probe_points
        }
        assert before == after

    @settings(max_examples=40, deadline=None)
    @given(operations=operation_strategy)
    def test_vacuum_is_idempotent(self, operations):
        engine, _max_ts = build_history(operations)
        engine.vacuum(retention_ns=50)
        count_after_first = engine.table("t").version_count()
        second = engine.vacuum(retention_ns=50)
        assert engine.table("t").version_count() == count_after_first
        assert second.versions_removed == 0

    @settings(max_examples=40, deadline=None)
    @given(operations=operation_strategy)
    def test_zero_retention_keeps_only_live_tail(self, operations):
        """With retention 0 every key keeps at most its latest committed
        version (plus nothing dead)."""
        engine, max_ts = build_history(operations)
        engine.vacuum(retention_ns=0)
        heap = engine.table("t")
        snapshot = Snapshot(engine.last_commit_ts)
        for key in range(1, 5):
            versions = heap.versions((key,))
            assert len(versions) <= 1
            live = engine.read("t", (key,), snapshot)
            if versions:
                assert live is not None
            else:
                assert live is None

    @settings(max_examples=40, deadline=None)
    @given(operations=operation_strategy)
    def test_latest_committed_still_updatable_after_vacuum(self, operations):
        engine, max_ts = build_history(operations)
        engine.vacuum(retention_ns=0)
        snapshot = Snapshot(engine.last_commit_ts)
        for key in range(1, 5):
            exists = engine.read("t", (key,), snapshot) is not None
            txid = 10_000 + key
            engine.begin(txid)
            if exists:
                assert engine.update(txid, "t", (key,),
                                     {"v": -1}) is not None
            else:
                engine.insert(txid, "t", {"k": key, "v": -1})
            engine.abort(txid)
