"""Unit tests for the GTM server and timestamp provider."""

import pytest

from repro.clocks import ClockSyncConfig, ClockSyncDaemon, GClockSource, GlobalTimeDevice, PhysicalClock
from repro.errors import ModeTransitionError, TransactionAborted
from repro.sim import Environment, ms, us
from repro.sim.network import Network
from repro.sim.rand import RandomStreams
from repro.txn import GTMServer, TimestampProvider, TxnMode


def make_rig(mode=TxnMode.GTM, latency=ms(1)):
    env = Environment()
    streams = RandomStreams(3)
    network = Network(env)
    gtm = GTMServer(env, network, "gtms", "east")
    device = GlobalTimeDevice(env, "east")
    clock = PhysicalClock(env, "node1", streams.stream("c1"))
    sync = ClockSyncDaemon(env, clock, device, ClockSyncConfig(), "node1")
    gclock = GClockSource(env, clock, sync)
    network.add_endpoint("node1", "east")
    network.set_link("node1", "gtms", latency_ns=latency)
    provider = TimestampProvider(env, network, "node1", gclock, "gtms", mode=mode)
    return env, network, gtm, provider


def run(env, generator):
    return env.run(until=env.process(generator))


class TestGtmMode:
    def test_begin_returns_counter(self):
        env, _net, gtm, provider = make_rig()

        def flow():
            read_ts, mode = yield from provider.begin()
            return read_ts, mode

        read_ts, mode = run(env, flow())
        assert read_ts == 0
        assert mode is TxnMode.GTM

    def test_commit_increments_counter(self):
        env, _net, gtm, provider = make_rig()

        def flow():
            first = yield from provider.commit_ts(TxnMode.GTM)
            second = yield from provider.commit_ts(TxnMode.GTM)
            return first, second

        first, second = run(env, flow())
        assert (first, second) == (1, 2)
        assert gtm.counter == 2

    def test_begin_pays_round_trip(self):
        env, _net, _gtm, provider = make_rig(latency=ms(25))

        def flow():
            yield from provider.begin()
            return env.now

        elapsed = run(env, flow())
        assert elapsed >= ms(50)

    def test_gclock_mode_pays_no_round_trip(self):
        env, _net, gtm, provider = make_rig(mode=TxnMode.GCLOCK, latency=ms(25))

        def flow():
            yield from provider.begin()
            ts = yield from provider.commit_ts(TxnMode.GCLOCK)
            return ts

        ts = run(env, flow())
        assert env.now < ms(5)  # only commit-wait, no 50 ms round trips
        assert gtm.begin_requests == 0
        assert gtm.commit_requests == 0
        assert ts > 0


class TestDualMode:
    def test_dual_timestamp_exceeds_both_regimes(self):
        env, net, gtm, provider = make_rig()
        gtm.counter = 500
        gtm.set_mode(TxnMode.DUAL)
        env.run(until=ms(10))

        def flow():
            yield from provider.set_mode(TxnMode.DUAL)
            _earliest, latest_at_issue = provider.gclock.bounds()
            ts = yield from provider.commit_ts(TxnMode.DUAL)
            return ts, latest_at_issue

        ts, latest_at_issue = run(env, flow())
        assert ts > 500
        assert ts > latest_at_issue  # Eq. 3: above the clock upper bound too

    def test_gtm_commit_in_dual_waits_twice_max_err(self):
        env, _net, gtm, provider = make_rig()
        gtm.set_mode(TxnMode.DUAL)
        gtm.max_err_seen = us(100)

        def flow():
            start = env.now
            yield from provider.commit_ts(TxnMode.GTM)
            return env.now - start

        waited = run(env, flow())
        assert waited >= 2 * us(100)

    def test_gtm_commit_after_cutover_aborts(self):
        env, _net, gtm, provider = make_rig()
        gtm.set_mode(TxnMode.DUAL)
        gtm.set_mode(TxnMode.GCLOCK)

        def flow():
            try:
                yield from provider.commit_ts(TxnMode.GTM)
            except TransactionAborted as exc:
                return str(exc)

        message = run(env, flow())
        assert "cutover" in message
        assert gtm.rejected_commits == 1

    def test_gclock_txn_upgrades_to_dual_when_node_left_gclock(self):
        env, _net, gtm, provider = make_rig(mode=TxnMode.GCLOCK)

        def flow():
            _ts, txn_mode = yield from provider.begin()
            # Node migrates away mid-transaction.
            yield from provider.set_mode(TxnMode.DUAL)
            ts = yield from provider.commit_ts(txn_mode)
            return ts

        ts = run(env, flow())
        # Committed via the GTM server (DUAL), not rejected.
        assert gtm.commit_requests == 1
        assert ts > 0

    def test_dual_begin_raises_counter_to_clock(self):
        env, _net, gtm, provider = make_rig()
        gtm.set_mode(TxnMode.DUAL)
        env.run(until=ms(50))

        def flow():
            yield from provider.set_mode(TxnMode.DUAL)
            read_ts, _mode = yield from provider.begin()
            return read_ts

        read_ts = run(env, flow())
        assert read_ts >= ms(40)  # clock-scale, not counter-scale


class TestModeTransitions:
    def test_illegal_server_transition_rejected(self):
        env, _net, gtm, _provider = make_rig()
        with pytest.raises(ModeTransitionError):
            gtm.set_mode(TxnMode.GCLOCK)  # GTM -> GCLOCK must pass DUAL

    def test_illegal_node_transition_rejected(self):
        env, _net, _gtm, provider = make_rig()

        def flow():
            try:
                yield from provider.set_mode(TxnMode.GCLOCK)
            except ModeTransitionError as exc:
                return str(exc)

        assert "illegal" in run(env, flow())

    def test_reentering_gtm_jumps_counter_past_gclock(self):
        env, _net, gtm, _provider = make_rig()
        gtm.set_mode(TxnMode.DUAL)
        gtm.max_gclock_seen = 10_000_000
        gtm.set_mode(TxnMode.GTM)
        assert gtm.counter > 10_000_000

    def test_same_mode_transition_is_noop(self):
        env, _net, gtm, _provider = make_rig()
        gtm.set_mode(TxnMode.GTM)
        assert gtm.mode is TxnMode.GTM

    def test_dual_entry_resets_error_tracking(self):
        env, _net, gtm, _provider = make_rig()
        gtm.set_mode(TxnMode.DUAL)
        gtm.max_err_seen = 999
        gtm.set_mode(TxnMode.GTM)
        gtm.set_mode(TxnMode.DUAL)
        assert gtm.max_err_seen == 0


class TestStats:
    def test_round_trip_accounting(self):
        env, _net, _gtm, provider = make_rig()

        def flow():
            yield from provider.begin()
            yield from provider.commit_ts(TxnMode.GTM)

        run(env, flow())
        assert provider.stats.gtm_round_trips == 2
        assert provider.stats.local_stamps == 0

    def test_commit_wait_accounting_in_gclock(self):
        env, _net, _gtm, provider = make_rig(mode=TxnMode.GCLOCK)

        def flow():
            yield from provider.commit_ts(TxnMode.GCLOCK)

        run(env, flow())
        assert provider.stats.commit_waits == 1
        assert provider.stats.commit_wait_ns_total > 0
        assert provider.stats.mean_commit_wait_ns() > 0
