"""Shared test configuration: hypothesis profiles.

Property tests run under one of two registered profiles, selected by the
``HYPOTHESIS_PROFILE`` environment variable (default ``dev``):

- ``ci`` — bounded examples, no deadline (shared runners have noisy
  clocks and a cold first run pays JIT-less Python warmup), derandomized
  so two CI runs of the same commit explore the same cases.
- ``dev`` — a larger example budget and hypothesis's own per-run
  randomness, for local bug-hunting.

Registration is gated on hypothesis being importable so the non-property
suite still runs in a minimal environment.
"""

from __future__ import annotations

import os

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - property tests skip themselves
    settings = None

if settings is not None:
    settings.register_profile(
        "ci", max_examples=25, deadline=None, derandomize=True,
        suppress_health_check=[HealthCheck.too_slow])
    settings.register_profile("dev", max_examples=75, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
