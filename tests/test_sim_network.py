"""Unit tests for the simulated network."""

import pytest

from repro.errors import NetworkError, SimulationError
from repro.sim import Environment, ms, us
from repro.sim.network import Network


def make_net(bandwidth_bps=1e12):
    env = Environment()
    net = Network(env, default_bandwidth_bps=bandwidth_bps)
    net.add_endpoint("a", "east")
    net.add_endpoint("b", "west")
    net.set_link("a", "b", latency_ns=ms(25))
    return env, net


def test_one_way_latency():
    env, net = make_net()
    arrivals = []
    net.set_handler("b", lambda msg: arrivals.append((msg.payload, env.now)))
    net.send("a", "b", "hello", size_bytes=100)
    env.run()
    assert len(arrivals) == 1
    payload, when = arrivals[0]
    assert payload == "hello"
    assert ms(25) <= when < ms(25.1)


def test_rpc_round_trip_takes_rtt():
    env, net = make_net()
    net.set_handler("b", lambda msg: msg.payload.reply(msg.payload.body * 2))

    def client():
        value = yield net.request("a", "b", 21)
        return value, env.now

    value, when = env.run(until=env.process(client()))
    assert value == 42
    assert ms(50) <= when < ms(50.1)


def test_rpc_to_down_endpoint_fails_fast():
    env, net = make_net()
    net.set_endpoint_up("b", False)

    def client():
        try:
            yield net.request("a", "b", "x")
        except NetworkError as exc:
            return str(exc)

    assert "down" in env.run(until=env.process(client()))


def test_rpc_timeout_fires():
    env, net = make_net()
    net.set_handler("b", lambda msg: None)  # never replies

    def client():
        try:
            yield net.request("a", "b", "x", timeout_ns=ms(10))
        except NetworkError as exc:
            return str(exc), env.now

    message, when = env.run(until=env.process(client()))
    assert "timed out" in message
    assert when == ms(10)


def test_message_to_down_endpoint_is_dropped():
    env, net = make_net()
    delivered = []
    net.set_handler("b", lambda msg: delivered.append(msg))
    net.set_endpoint_up("b", False)
    net.send("a", "b", "lost")
    env.run()
    assert delivered == []
    assert net.messages_dropped == 1


def test_transmission_delay_scales_with_size():
    # 1 MB over 8 Mbit/s takes 1 second.
    env, net = make_net(bandwidth_bps=8e6)
    arrivals = []
    net.set_handler("b", lambda msg: arrivals.append(env.now))
    net.send("a", "b", "big", size_bytes=1_000_000)
    env.run()
    assert arrivals[0] == pytest.approx(ms(25) + 1_000_000_000, rel=1e-6)


def test_serialization_queueing_back_to_back():
    env, net = make_net(bandwidth_bps=8e6)  # 1 byte/us
    arrivals = []
    net.set_handler("b", lambda msg: arrivals.append((msg.payload, env.now)))
    net.send("a", "b", "first", size_bytes=1000)
    net.send("a", "b", "second", size_bytes=1000)
    env.run()
    # Second message waits for the first to clock onto the wire.
    first = dict(arrivals)["first"]
    second = dict(arrivals)["second"]
    assert second - first == pytest.approx(us(1000), rel=1e-6)


def test_injected_delay_adds_latency():
    env, net = make_net()
    arrivals = []
    net.set_handler("b", lambda msg: arrivals.append(env.now))
    net.inject_delay("a", "b", ms(100))
    net.send("a", "b", "slow", size_bytes=10)
    env.run()
    assert arrivals[0] >= ms(125)
    assert net.rtt_ns("a", "b") == 2 * ms(125)


def test_inject_delay_all_covers_every_pair():
    env, net = make_net()
    net.add_endpoint("c", "north")
    net.inject_delay_all(ms(7))
    assert net.link("a", "c").extra_delay_ns == ms(7)
    assert net.link("c", "b").extra_delay_ns == ms(7)


def test_local_delivery_is_instant():
    env, net = make_net()
    arrivals = []
    net.set_handler("a", lambda msg: arrivals.append(env.now))
    net.send("a", "a", "self")
    env.run()
    assert arrivals == [0]


def test_duplicate_endpoint_rejected():
    env, net = make_net()
    with pytest.raises(SimulationError):
        net.add_endpoint("a", "east")


def test_unknown_endpoint_rejected():
    env, net = make_net()
    with pytest.raises(NetworkError):
        net.send("a", "nope", "x")
    with pytest.raises(NetworkError):
        net.endpoint("nope")


def test_late_rpc_reply_after_timeout_is_ignored():
    env, net = make_net()

    def slow_server(msg):
        def responder():
            yield env.timeout(ms(100))
            msg.payload.reply("late")
        env.process(responder())

    net.set_handler("b", slow_server)
    outcomes = []

    def client():
        try:
            value = yield net.request("a", "b", "x", timeout_ns=ms(30))
            outcomes.append(("ok", value))
        except NetworkError:
            outcomes.append(("timeout", env.now))

    env.process(client())
    env.run()
    assert outcomes == [("timeout", ms(30))]
