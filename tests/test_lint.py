"""simlint: per-rule fixtures, pragmas, baseline, reporters, CLI, harness.

Every rule gets at least one flagging and one non-flagging fixture; the
repo itself must lint clean; and re-introducing the PR-1 ``locks.py`` bug
(set-order lock release) must trip SIM103.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.lint import (
    Baseline,
    default_rules,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.lint.determinism import run_perturbation, smoke_run
from repro.lint.rules import module_name_for

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")


def findings_for(source, rule=None, path="fixture.py", module_name=None):
    rules = default_rules(select=[rule] if rule else None)
    return lint_source(textwrap.dedent(source), path=path, rules=rules,
                       module_name=module_name)


def codes(findings):
    return [finding.rule for finding in findings]


# ----------------------------------------------------------------------
# SIM101 — wall-clock reads
# ----------------------------------------------------------------------
class TestWallClock:
    def test_flags_time_time(self):
        found = findings_for("""
            import time
            started = time.time()
        """, rule="SIM101")
        assert codes(found) == ["SIM101"]
        assert "time.time" in found[0].message

    def test_flags_from_import_and_datetime(self):
        found = findings_for("""
            from time import perf_counter
            from datetime import datetime
            a = perf_counter()
            b = datetime.now()
        """, rule="SIM101")
        assert codes(found) == ["SIM101", "SIM101"]

    def test_env_now_and_unrelated_time_are_clean(self):
        found = findings_for("""
            import time
            def g_run(env):
                now = env.now
                yield env.timeout(time.hour_ns if False else 5)
            duration = 3.0  # a variable named time.time is not a call
        """, rule="SIM101")
        assert found == []

    def test_local_object_named_time_is_clean(self):
        # A non-imported binding shadowing the module name must not match.
        found = findings_for("""
            time = make_clock()
            t = time.time()
        """, rule="SIM101")
        assert found == []


# ----------------------------------------------------------------------
# SIM102 — unseeded randomness
# ----------------------------------------------------------------------
class TestUnseededRandom:
    def test_flags_module_level_function(self):
        found = findings_for("""
            import random
            jitter = random.random()
        """, rule="SIM102")
        assert codes(found) == ["SIM102"]

    def test_flags_unseeded_and_system_random(self):
        found = findings_for("""
            import random
            a = random.Random()
            b = random.SystemRandom()
        """, rule="SIM102")
        assert codes(found) == ["SIM102", "SIM102"]

    def test_seeded_random_is_clean(self):
        found = findings_for("""
            import random
            rng = random.Random(42)
            value = rng.random()
        """, rule="SIM102")
        assert found == []

    def test_allowlisted_module_is_clean(self):
        found = findings_for("""
            import random
            x = random.getrandbits(64)
        """, rule="SIM102", module_name="repro.sim.rand")
        assert found == []


# ----------------------------------------------------------------------
# SIM103 — set iteration order
# ----------------------------------------------------------------------
class TestSetIteration:
    def test_flags_direct_set_call(self):
        found = findings_for("""
            for item in set(items):
                schedule(item)
        """, rule="SIM103")
        assert codes(found) == ["SIM103"]

    def test_flags_annotated_local(self):
        found = findings_for("""
            def release(held):
                keys: set = held
                for key in keys:
                    wake(key)
        """, rule="SIM103")
        assert codes(found) == ["SIM103"]

    def test_flags_nested_dict_annotation(self):
        # The storage/heap.py shape: dict[str, dict[Any, set]] buckets.
        found = findings_for("""
            import typing
            class Table:
                def __init__(self):
                    self._indexes: dict[str, dict[typing.Any, set]] = {}
                def lookup(self, column, value):
                    index = self._indexes.get(column)
                    rows = [key for key in index.get(value, ())]
                    return rows
        """, rule="SIM103")
        assert codes(found) == ["SIM103"]

    def test_sorted_iteration_is_clean(self):
        found = findings_for("""
            def release(self, txid):
                for lock_key in sorted(self._held.pop(txid, set()), key=repr):
                    self._release_one(lock_key)
        """, rule="SIM103")
        assert found == []

    def test_membership_and_len_are_clean(self):
        found = findings_for("""
            seen: set = set()
            if "x" in seen:
                pass
            n = len(seen)
            copy = set(seen)
        """, rule="SIM103")
        assert found == []

    def test_set_comprehension_over_set_is_clean(self):
        # set -> set never leaks iteration order.
        found = findings_for("""
            homes = {pick(w) for w in range(50)}
            regions = {region_of(w) for w in homes}
        """, rule="SIM103")
        assert found == []

    def test_list_comprehension_over_set_is_flagged(self):
        found = findings_for("""
            homes: set = discover()
            ordered = [region_of(w) for w in homes]
        """, rule="SIM103")
        assert codes(found) == ["SIM103"]

    def test_list_conversion_of_set_flagged(self):
        found = findings_for("""
            shards = {1, 2, 3}
            ordered = list(shards)
        """, rule="SIM103")
        assert codes(found) == ["SIM103"]

    def test_reintroducing_pr1_locks_bug_is_flagged(self):
        """Un-sorting the lock-release loop (the actual PR-1 bug) must
        trip SIM103 — the rule guards a real scheduling path."""
        locks_path = os.path.join(SRC_DIR, "repro", "storage", "locks.py")
        with open(locks_path, encoding="utf-8") as handle:
            source = handle.read()
        fixed = "for lock_key in sorted(self._held.pop(txid, set()), key=repr):"
        assert fixed in source, "locks.py release loop changed; update test"
        buggy = source.replace(
            fixed, "for lock_key in self._held.pop(txid, set()):")
        assert codes(findings_for(buggy, rule="SIM103")) == ["SIM103"]
        # ... and the current, fixed source is clean.
        assert findings_for(source, rule="SIM103") == []


# ----------------------------------------------------------------------
# SIM104 — dropped generator-process calls
# ----------------------------------------------------------------------
class TestDroppedGenerator:
    def test_flags_bare_statement(self):
        found = findings_for("""
            def run(cn, ctx):
                cn.g_commit(ctx)
        """, rule="SIM104")
        assert codes(found) == ["SIM104"]
        assert "g_commit" in found[0].message

    def test_yield_from_and_process_are_clean(self):
        found = findings_for("""
            def g_run(env, cn, ctx):
                result = yield from cn.g_commit(ctx)
                env.process(cn.g_abort(ctx))
                yield from cn.g_begin()
                return result
        """, rule="SIM104")
        assert found == []


# ----------------------------------------------------------------------
# SIM105 — blocking calls in sim generators
# ----------------------------------------------------------------------
class TestBlockingInGenerator:
    def test_flags_sleep_in_generator(self):
        found = findings_for("""
            import time
            def g_worker(env):
                time.sleep(0.1)
                yield env.timeout(5)
        """, rule="SIM105")
        assert codes(found) == ["SIM105"]

    def test_flags_socket_in_generator(self):
        found = findings_for("""
            import socket
            def poller(env):
                conn = socket.create_connection(("host", 80))
                yield env.timeout(5)
        """, rule="SIM105")
        assert codes(found) == ["SIM105"]

    def test_sleep_outside_generator_is_clean(self):
        found = findings_for("""
            import time
            def host_side_wait():
                time.sleep(0.1)
        """, rule="SIM105")
        assert found == []

    def test_local_dict_named_requests_is_clean(self):
        # ror/rcp.py shape: a local variable named `requests` is not the
        # requests library.
        found = findings_for("""
            def g_poll(env, nodes):
                requests = {node: send(node) for node in nodes}
                yield env.all_of(list(requests.values()))
                for node, request in requests.items():
                    handle(node, request.value)
        """, rule="SIM105")
        assert found == []


# ----------------------------------------------------------------------
# SIM106 — mutable default arguments
# ----------------------------------------------------------------------
class TestMutableDefault:
    def test_flags_literal_and_factory(self):
        found = findings_for("""
            def enqueue(item, queue=[], registry={}):
                queue.append(item)
            def track(key, *, seen=set()):
                seen.add(key)
        """, rule="SIM106")
        assert codes(found) == ["SIM106", "SIM106", "SIM106"]

    def test_none_default_is_clean(self):
        found = findings_for("""
            def enqueue(item, queue=None, limit=10, name="q"):
                queue = [] if queue is None else queue
        """, rule="SIM106")
        assert found == []


# ----------------------------------------------------------------------
# SIM112 — hot-path dispatch hazards
# ----------------------------------------------------------------------
class TestHotPathDispatch:
    def test_flags_heapq_import_outside_sim(self):
        found = findings_for("""
            import heapq
            from heapq import heappush, heappop
        """, rule="SIM112", module_name="repro.storage.wal")
        assert codes(found) == ["SIM112", "SIM112"]

    def test_heapq_allowed_inside_sim_kernel(self):
        found = findings_for("""
            from heapq import heappop, heappush
        """, rule="SIM112", module_name="repro.sim.core")
        assert found == []

    def test_flags_per_event_fstring_getattr(self):
        found = findings_for("""
            class Node:
                def on_message(self, kind, request):
                    handler = getattr(self, f"_handle_{kind}", None)
                    if hasattr(self, "_pre_" + kind):
                        handler(request)
        """, rule="SIM112", module_name="repro.cluster.custom")
        assert codes(found) == ["SIM112", "SIM112"]

    def test_precomputed_handler_dict_is_clean(self):
        found = findings_for("""
            class Node:
                def __init__(self):
                    self._handlers = {
                        attr[len("_handle_"):]: getattr(self, attr)
                        for attr in dir(self)
                        if attr.startswith("_handle_")
                    }

                def on_message(self, kind, request):
                    self._handlers[kind](request)
        """, rule="SIM112", module_name="repro.cluster.custom")
        assert found == []

    def test_constant_getattr_is_clean(self):
        found = findings_for("""
            class Node:
                def probe(self, other):
                    return getattr(other, "applied_lsn", 0)
        """, rule="SIM112", module_name="repro.cluster.custom")
        assert found == []


# ----------------------------------------------------------------------
# Pragmas, baseline, reporters
# ----------------------------------------------------------------------
class TestSuppression:
    def test_line_pragma_suppresses_named_rule(self):
        source = """
            import time
            a = time.time()  # simlint: ignore[SIM101]
            b = time.time()
        """
        found = findings_for(source, rule="SIM101")
        assert len(found) == 1 and found[0].line == 4

    def test_bare_pragma_suppresses_all(self):
        found = findings_for("""
            import time
            a = time.time()  # simlint: ignore
        """)
        assert found == []

    def test_pragma_for_other_rule_does_not_suppress(self):
        found = findings_for("""
            import time
            a = time.time()  # simlint: ignore[SIM103]
        """, rule="SIM101")
        assert codes(found) == ["SIM101"]

    def test_skip_file(self):
        found = findings_for("""
            # simlint: skip-file
            import time
            a = time.time()
        """)
        assert found == []

    def test_baseline_round_trip(self, tmp_path):
        source = textwrap.dedent("""
            import time
            a = time.time()
            for x in set([1, 2]):
                pass
        """)
        findings = lint_source(source, path="mod.py")
        assert {f.rule for f in findings} == {"SIM101", "SIM103"}
        baseline_path = str(tmp_path / "baseline.json")
        Baseline.write(baseline_path, findings)
        baseline = Baseline.load(baseline_path)
        assert len(baseline) == 2
        new, grandfathered = baseline.split(lint_source(source, path="mod.py"))
        assert new == [] and len(grandfathered) == 2
        # A fresh finding is not absorbed by the baseline.
        extra = lint_source(source + "b = time.monotonic()\n", path="mod.py")
        new, grandfathered = baseline.split(extra)
        assert [f.rule for f in new] == ["SIM101"]
        assert "time.monotonic" in new[0].message

    def test_syntax_error_becomes_sim100(self):
        found = lint_source("def broken(:\n", path="bad.py")
        assert codes(found) == ["SIM100"]


class TestReporters:
    def test_json_schema(self):
        findings = lint_source(
            "import time\nx = time.time()\n", path="mod.py")
        payload = json.loads(render_json(findings, files_checked=1))
        assert payload["version"] == 1
        assert payload["counts"] == {"SIM101": 1}
        assert payload["files_checked"] == 1
        assert payload["baselined"] == 0
        (entry,) = payload["findings"]
        assert set(entry) == {"rule", "path", "line", "col", "message"}
        assert entry["rule"] == "SIM101" and entry["line"] == 2

    def test_text_report_mentions_location_and_summary(self):
        findings = lint_source(
            "import time\nx = time.time()\n", path="mod.py")
        text = render_text(findings, files_checked=1)
        assert "mod.py:2:" in text and "SIM101×1" in text

    def test_clean_text_report(self):
        assert "clean: 0 findings" in render_text([], files_checked=3)


class TestModuleNames:
    def test_src_layout(self):
        assert module_name_for("src/repro/storage/heap.py") == \
            "repro.storage.heap"
        assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"

    def test_bare_path(self):
        assert module_name_for("heap.py") == "heap"


# ----------------------------------------------------------------------
# The repo itself
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_lint_paths_on_src_is_clean(self):
        findings = lint_paths([SRC_DIR])
        assert findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.rule} {f.message}" for f in findings)

    def test_cli_exits_zero_on_repo(self):
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "--format", "json"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []
        assert payload["files_checked"] > 50

    def test_cli_nonzero_on_findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nx = time.time()\n", encoding="utf-8")
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(bad)],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 1
        assert "SIM101" in proc.stdout


# ----------------------------------------------------------------------
# Determinism harness
# ----------------------------------------------------------------------
class TestDeterminismHarness:
    def test_smoke_run_summary_shape(self):
        summary = smoke_run(duration_s=0.05, warmup_s=0.01)
        assert set(summary) >= {"digest", "spans", "committed", "aborted",
                                "sim_now_ns", "hash_seed"}
        assert len(summary["digest"]) == 64
        assert summary["spans"] > 0

    @pytest.mark.slow
    def test_perturbation_passes_on_repo(self):
        result = run_perturbation(seeds=2, duration_s=0.1, warmup_s=0.02)
        assert result.errors == []
        assert result.ok, result.render()
        assert len({run["digest"] for run in result.runs}) == 1
        assert "PASS" in result.render()


class TestFileDedup:
    def test_file_passed_directly_and_via_directory_yields_once(self, tmp_path):
        from repro.lint.rules import iter_python_files

        target = tmp_path / "mod.py"
        target.write_text("import time\n", encoding="utf-8")
        files = list(iter_python_files([str(target), str(tmp_path)]))
        assert len(files) == 1

    def test_no_duplicate_findings_for_doubly_passed_file(self, tmp_path):
        target = tmp_path / "mod.py"
        # One definite SIM101 finding.
        target.write_text(
            "import time\n\n"
            "def f():\n"
            "    return time.time()\n", encoding="utf-8")
        findings = lint_paths([str(target), str(tmp_path)])
        assert len(findings) == 1
        assert findings[0].rule == "SIM101"
