"""The fuzzer's own acceptance tests: determinism, discovery, replay.

Three claims make :mod:`repro.explore` trustworthy, and each is asserted
here rather than documented:

1. **Determinism** — a campaign is a pure function of its seed: identical
   corpus, coverage digest and summary across runs, across processes,
   and across ``PYTHONHASHSEED`` values (subprocess test).
2. **Discovery** — with the historical RCP-gap bug re-introduced
   (``inject_bug="rcp-gap"``), a campaign seeded with a shard-targeted
   crash storm finds the violation and ddmin-shrinks it to the minimal
   trigger (≤ 3 faults: stall a replica, kill its peer, kill the
   primary).
3. **Replay** — the emitted artifact reproduces the identical violation
   digest, and a tampered artifact is rejected (exit 2).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.chaos.injectors import JitterStorm, LatencySpike
from repro.chaos.schedule import FaultSchedule, FaultSpec
from repro.explore import (
    Corpus,
    ExploreConfig,
    ExploreEngine,
    TrialGenerator,
    TrialSpec,
    derive_rng,
    replay_artifact,
    run_trial,
)
from repro.explore.coverage import log2_bucket
from repro.explore.__main__ import main as explore_main

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


# ----------------------------------------------------------------------
# Building blocks
# ----------------------------------------------------------------------
def test_log2_bucket():
    assert [log2_bucket(n) for n in (0, 1, 2, 3, 4, 7, 8, 100)] == \
        ["0", "1", "2", "2", "4", "4", "8", "64"]


def test_trial_spec_validation():
    schedule = FaultSchedule("s", ())
    with pytest.raises(ValueError):
        TrialSpec(seed=0, schedule=schedule, topology="moon-base")
    with pytest.raises(ValueError):
        TrialSpec(seed=0, schedule=schedule, mode="vector-clock")
    with pytest.raises(ValueError):
        TrialSpec(seed=0, schedule=schedule, fragments=("sysbench",))


def test_generator_emits_valid_specs():
    generator = TrialGenerator()
    for index in range(30):
        rng = derive_rng(7, f"gen:{index}")
        spec = generator.fresh(rng, index)
        assert 1 <= spec.fault_count <= 8
        assert spec.schedule.name == f"explore-{index}"
        # Serializable and canonical.
        assert TrialSpec.from_json(spec.to_json()).digest() == spec.digest()
        mutated = generator.mutate(rng, spec, index + 1000)
        assert mutated.schedule.name == f"explore-{index + 1000}"
        assert TrialSpec.from_json(mutated.to_json()).digest() == \
            mutated.digest()


def test_corpus_admission_is_coverage_driven():
    corpus = Corpus()
    schedule = FaultSchedule("c", ())
    spec_a = TrialSpec(seed=1, schedule=schedule)
    spec_b = TrialSpec(seed=2, schedule=schedule)
    spec_c = TrialSpec(seed=3, schedule=schedule)
    assert corpus.consider(spec_a, ("x", "y")) == ("x", "y")
    assert corpus.consider(spec_b, ("x",)) == ()     # nothing new
    assert corpus.consider(spec_c, ("x", "z")) == ("z",)
    assert len(corpus) == 2
    assert corpus.coverage == {"x", "y", "z"}


def test_derive_rng_is_stable_and_label_sensitive():
    assert derive_rng(5, "a").random() == derive_rng(5, "a").random()
    assert derive_rng(5, "a").random() != derive_rng(5, "b").random()
    assert derive_rng(5, "a").random() != derive_rng(6, "a").random()


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_campaign_is_deterministic_in_process():
    def campaign():
        engine = ExploreEngine(ExploreConfig(seed=3, budget_trials=3))
        summary = engine.run()
        return summary, engine.corpus.to_json()

    first, first_corpus = campaign()
    again, again_corpus = campaign()
    assert first == again
    assert first_corpus == again_corpus
    assert first["trials_run"] == 3


@pytest.mark.slow
def test_campaign_is_hashseed_independent(tmp_path):
    """Same seed, different PYTHONHASHSEED → byte-identical outputs."""
    outputs = []
    for hashseed in ("1", "4242"):
        out = tmp_path / f"out-{hashseed}"
        env = dict(os.environ, PYTHONHASHSEED=hashseed,
                   PYTHONPATH=REPO_SRC)
        subprocess.run(
            [sys.executable, "-m", "repro.explore", "run",
             "--budget-trials", "3", "--seed", "0", "--out", str(out)],
            check=True, env=env, capture_output=True)
        outputs.append(((out / "summary.json").read_text(),
                        (out / "corpus.json").read_text()))
    assert outputs[0] == outputs[1]


# ----------------------------------------------------------------------
# Known-bug discovery + shrinking + replay
# ----------------------------------------------------------------------
def _planted_spec() -> TrialSpec:
    """A shard-targeted crash storm plus ambient noise — the kind of
    schedule the generator emits organically (15% of fresh specs); the
    test plants it so the discovery budget stays small."""
    generator = TrialGenerator()
    rng = derive_rng(0, "planted")
    core = generator.stale_failover_pattern(rng)
    noise = [FaultSpec(JitterStorm(jitter_ms=2.0), at_s=0.05,
                       duration_s=0.3),
             FaultSpec(LatencySpike(extra_ms=10.0), at_s=0.3,
                       duration_s=0.2)]
    return TrialSpec(seed=11,
                     schedule=FaultSchedule("planted",
                                            tuple(core + noise)))


def test_rcp_gap_bug_is_found_shrunk_and_replayable():
    planted = _planted_spec()
    assert planted.fault_count >= 5
    # Sanity: the same schedule is clean when the guard (the fix) is on.
    assert run_trial(planted).ok

    engine = ExploreEngine(
        ExploreConfig(seed=0, budget_trials=5, inject_bug="rcp-gap"),
        initial_specs=[planted])
    summary = engine.run()

    assert summary["ok"] is False
    assert "ror-promotion-gap" in summary["violation_kinds"]
    # ddmin reduced the storm to its minimal trigger.
    assert engine.shrunk is not None
    assert engine.shrunk.final_faults <= 3
    # The artifact replays to the identical violation digest.
    assert engine.artifact is not None
    reproduced, result = replay_artifact(engine.artifact)
    assert reproduced
    assert result.violation_digest == summary["violation_digest"]
    # And the minimized reproducer is clean once the bug is fixed
    # (guard back on): the artifact pins the bug, not the schedule.
    fixed = run_trial(engine.shrunk.spec)
    assert fixed.ok


def test_replay_rejects_tampered_artifact(tmp_path):
    planted = _planted_spec()
    engine = ExploreEngine(
        ExploreConfig(seed=0, budget_trials=1, inject_bug="rcp-gap",
                      shrink_max_trials=0),
        initial_specs=[planted])
    engine.run()
    assert engine.artifact is not None
    artifact = dict(engine.artifact, violation_digest="0" * 64)
    path = tmp_path / "tampered.json"
    path.write_text(json.dumps(artifact))
    assert explore_main(["replay", str(path)]) == 2


def test_cli_run_writes_corpus_and_summary(tmp_path, capsys):
    out = tmp_path / "campaign"
    code = explore_main(["run", "--budget-trials", "2", "--seed", "1",
                         "--out", str(out), "--fail-on-violation"])
    assert code == 0
    summary = json.loads((out / "summary.json").read_text())
    assert summary["trials_run"] == 2
    assert summary["coverage_elements"] > 0
    corpus = json.loads((out / "corpus.json").read_text())
    assert corpus["coverage_digest"] == summary["coverage_digest"]
    capsys.readouterr()
