"""Unit tests for the row lock table."""

from repro.errors import WriteConflict
from repro.sim import Environment, ms
from repro.storage.locks import LockTable


def test_uncontended_acquire_is_immediate():
    env = Environment()
    locks = LockTable(env)
    event = locks.acquire(1, "t", (1,))
    assert event.triggered and event.ok
    assert locks.holder("t", (1,)) == 1


def test_reentrant_acquire():
    env = Environment()
    locks = LockTable(env)
    locks.acquire(1, "t", (1,))
    again = locks.acquire(1, "t", (1,))
    assert again.triggered and again.ok


def test_waiter_granted_on_release_fifo():
    env = Environment()
    locks = LockTable(env)
    granted = []

    def holder():
        yield locks.acquire(1, "t", (1,))
        yield env.timeout(ms(10))
        locks.release_all(1)

    def waiter(txid, delay):
        yield env.timeout(delay)
        yield locks.acquire(txid, "t", (1,))
        granted.append((txid, env.now))
        yield env.timeout(ms(5))
        locks.release_all(txid)

    env.process(holder())
    env.process(waiter(2, 1))
    env.process(waiter(3, 2))
    env.run()
    assert [txid for txid, _t in granted] == [2, 3]
    assert granted[0][1] == ms(10)
    assert granted[1][1] == ms(15)


def test_lock_wait_timeout_raises_write_conflict():
    env = Environment()
    locks = LockTable(env, default_timeout_ns=ms(20))
    locks.acquire(1, "t", (1,))
    outcome = []

    def waiter():
        try:
            yield locks.acquire(2, "t", (1,))
            outcome.append("granted")
        except WriteConflict:
            outcome.append(("timeout", env.now))

    env.process(waiter())
    env.run()
    assert outcome == [("timeout", ms(20))]
    assert locks.timeout_count == 1


def test_timed_out_waiter_skipped_on_release():
    env = Environment()
    locks = LockTable(env, default_timeout_ns=ms(5))
    locks.acquire(1, "t", (1,))
    results = []

    def impatient():
        try:
            yield locks.acquire(2, "t", (1,))
            results.append("2-granted")
        except WriteConflict:
            results.append("2-timeout")

    def patient():
        yield locks.acquire(3, "t", (1,), timeout_ns=ms(100))
        results.append(("3-granted", env.now))

    def holder():
        yield env.timeout(ms(10))
        locks.release_all(1)

    env.process(impatient())
    env.process(patient())
    env.process(holder())
    env.run()
    assert "2-timeout" in results
    assert ("3-granted", ms(10)) in results
    assert locks.holder("t", (1,)) == 3


def test_release_all_frees_every_key():
    env = Environment()
    locks = LockTable(env)
    locks.acquire(1, "t", (1,))
    locks.acquire(1, "t", (2,))
    locks.acquire(1, "u", (1,))
    assert locks.locked_count() == 3
    locks.release_all(1)
    assert locks.locked_count() == 0
    assert locks.held_by(1) == set()


def test_different_keys_do_not_contend():
    env = Environment()
    locks = LockTable(env)
    locks.acquire(1, "t", (1,))
    event = locks.acquire(2, "t", (2,))
    assert event.triggered and event.ok


def test_deadlock_counted_separately_from_timeout():
    # AB/BA cycle with no sanitizer: the timeout breaks it, but the abort
    # is classified (and counted) as a deadlock, not a plain timeout.
    env = Environment()
    locks = LockTable(env)
    aborted = []

    def txn(me, delay, first, second):
        yield locks.acquire(me, first, (1,))
        yield env.timeout(delay)
        try:
            yield locks.acquire(me, second, (1,))
        except WriteConflict:
            aborted.append(me)
        locks.release_all(me)

    env.process(txn(1, 1, "a", "b"))
    env.process(txn(2, 2, "b", "a"))
    env.run()
    assert aborted  # the cycle had to be broken
    assert locks.deadlock_count == 1
    assert locks.timeout_count == 0


def test_lock_counters_emitted_into_timeseries():
    from repro.obs import enable_observability

    env = Environment()
    enable_observability(env, metrics=False, trace=False, timeseries=True)
    locks = LockTable(env, default_timeout_ns=ms(20))
    locks.acquire(1, "t", (1,))  # holder never releases

    def waiter():
        try:
            yield locks.acquire(2, "t", (1,))
        except WriteConflict:
            pass

    env.process(waiter())
    env.run()
    assert locks.timeout_count == 1
    series = env.series.series("lock.timeouts")
    assert series is not None
    assert sum(window.last for window in series.windows.values()) == 1
    assert env.series.series("lock.deadlocks") is None


def test_deadlock_emitted_into_timeseries_with_sanitizer():
    from repro.obs import enable_observability
    from repro.san import Sanitizer

    env = Environment()
    enable_observability(env, metrics=False, trace=False, timeseries=True)
    Sanitizer(env).install()
    locks = LockTable(env)

    def txn(me, delay, first, second):
        yield locks.acquire(me, first, (1,))
        yield env.timeout(delay)
        try:
            yield locks.acquire(me, second, (1,))
        except WriteConflict:
            pass
        locks.release_all(me)

    env.process(txn(1, 1, "a", "b"))
    env.process(txn(2, 2, "b", "a"))
    env.run()
    assert locks.deadlock_count == 1
    series = env.series.series("lock.deadlocks")
    assert series is not None
    assert sum(window.last for window in series.windows.values()) == 1
