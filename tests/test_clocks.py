"""Unit tests for the clock substrate."""

import pytest

from repro.clocks import (
    ClockSyncConfig,
    ClockSyncDaemon,
    GClockSource,
    GlobalTimeDevice,
    HybridLogicalClock,
    PhysicalClock,
)
from repro.clocks.hlc import HlcTimestamp
from repro.errors import ClockError
from repro.sim import Environment, ms, seconds, us
from repro.sim.rand import RandomStreams


def make_gclock(env, name="node1", analytic=True, max_drift_ppm=200.0,
                initial_offset_ns=0):
    streams = RandomStreams(seed=7)
    clock = PhysicalClock(env, name, streams.stream(f"clock:{name}"),
                          max_drift_ppm=max_drift_ppm,
                          initial_offset_ns=initial_offset_ns)
    device = GlobalTimeDevice(env, region="east", rng=streams.stream("device"))
    sync = ClockSyncDaemon(env, clock, device,
                           ClockSyncConfig(analytic=analytic), name=name)
    return GClockSource(env, clock, sync), clock, device, sync


class TestPhysicalClock:
    def test_reads_advance_with_true_time(self):
        env = Environment()
        clock = PhysicalClock(env, "n", RandomStreams(1).stream("c"))
        first = clock.read()
        env.run(until=seconds(1))
        second = clock.read()
        assert second > first
        # Drift bounded at 200 PPM: within 200 us over one second.
        assert abs((second - first) - seconds(1)) <= us(201)

    def test_offset_bounded_by_drift(self):
        env = Environment()
        clock = PhysicalClock(env, "n", RandomStreams(2).stream("c"),
                              max_drift_ppm=100.0)
        env.run(until=seconds(10))
        assert abs(clock.offset_ns()) <= round(seconds(10) * 100e-6) + 1

    def test_step_injects_jump(self):
        env = Environment()
        clock = PhysicalClock(env, "n", RandomStreams(3).stream("c"))
        clock.step(ms(5))
        assert clock.offset_ns() == pytest.approx(ms(5), abs=100)


class TestTimeDevice:
    def test_query_accurate_to_true_time(self):
        env = Environment()
        device = GlobalTimeDevice(env, "east", accuracy_ns=50)
        env.run(until=ms(3))
        assert abs(device.query() - env.now) <= 50

    def test_failed_device_raises(self):
        env = Environment()
        device = GlobalTimeDevice(env, "east")
        device.fail()
        with pytest.raises(ClockError):
            device.query()
        device.recover()
        assert isinstance(device.query(), int)


class TestSyncDaemon:
    def test_analytic_error_bound_is_tight(self):
        env = Environment()
        source, _clock, _device, sync = make_gclock(env)
        env.run(until=seconds(1))
        # T_err = 60us RTT + <=200ppm * <=1ms elapsed ~= 60.2us.
        assert sync.error_bound_ns() <= us(61)
        assert sync.error_bound_ns() >= us(60)

    def test_analytic_clock_stays_within_bound_of_true_time(self):
        env = Environment()
        source, clock, _device, sync = make_gclock(env)
        for _ in range(50):
            env.run(until=env.now + ms(17))
            assert abs(clock.offset_ns()) <= sync.error_bound_ns()

    def test_event_driven_mode_matches_analytic_bound(self):
        env = Environment()
        source, clock, _device, sync = make_gclock(env, analytic=False)
        sync.start()
        env.run(until=ms(50))
        assert sync.sync_count >= 40
        assert sync.error_bound_ns() <= us(61)
        assert abs(clock.offset_ns()) <= sync.error_bound_ns()

    def test_device_failure_grows_error_bound(self):
        env = Environment()
        source, _clock, device, sync = make_gclock(env)
        env.run(until=ms(10))
        device.fail()
        baseline = sync.error_bound_ns()
        env.run(until=env.now + seconds(10))
        grown = sync.error_bound_ns()
        assert grown > baseline
        # 200 PPM over 10 s is 2 ms of drift allowance.
        assert grown >= ms(2)
        assert not sync.healthy

    def test_recovery_restores_health(self):
        env = Environment()
        source, _clock, device, sync = make_gclock(env)
        device.fail()
        env.run(until=seconds(30))
        assert not sync.healthy
        device.recover()
        env.run(until=env.now + ms(5))
        assert sync.healthy


class TestGClockSource:
    def test_timestamp_is_upper_bound_on_true_time(self):
        env = Environment()
        source, _clock, _device, _sync = make_gclock(env)
        env.run(until=ms(100))
        stamp = source.timestamp()
        assert stamp.ts >= env.now  # Eq. 1: T_clock + T_err bounds true time
        assert stamp.err > 0

    def test_bounds_contain_true_time(self):
        env = Environment()
        source, _clock, _device, _sync = make_gclock(env)
        for _ in range(20):
            env.run(until=env.now + ms(13))
            earliest, latest = source.bounds()
            assert earliest <= env.now <= latest

    def test_wait_until_after_outlasts_the_timestamp(self):
        env = Environment()
        source, _clock, _device, _sync = make_gclock(env)

        def proc():
            stamp = source.timestamp()
            reading = yield from source.wait_until_after(stamp.ts)
            return stamp, reading

        stamp, reading = env.run(until=env.process(proc()))
        assert reading > stamp.ts
        # The wait is roughly the error bound: well under a millisecond.
        assert env.now <= ms(1)

    def test_commit_wait_spans_true_time_of_timestamp(self):
        """After wait_until_after(ts), true time must exceed ts - err...
        in fact the local clock exceeding ts implies true time > ts - err,
        which is what external consistency needs."""
        env = Environment()
        source, _clock, _device, _sync = make_gclock(env)
        env.run(until=ms(5))

        def proc():
            stamp = source.timestamp()
            yield from source.wait_until_after(stamp.ts)
            return stamp

        stamp = env.run(until=env.process(proc()))
        assert env.now > stamp.ts - stamp.err

    def test_healthy_tracks_sync(self):
        env = Environment()
        source, _clock, device, _sync = make_gclock(env)
        assert source.healthy
        device.fail()
        env.run(until=seconds(30))
        assert not source.healthy


class TestHlc:
    def test_monotonic_under_local_events(self):
        env = Environment()
        clock = PhysicalClock(env, "n", RandomStreams(5).stream("c"))
        hlc = HybridLogicalClock(clock)
        stamps = []
        for _ in range(10):
            stamps.append(hlc.now())
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_update_advances_past_remote(self):
        env = Environment()
        clock = PhysicalClock(env, "n", RandomStreams(6).stream("c"))
        hlc = HybridLogicalClock(clock)
        remote = HlcTimestamp(physical=clock.read() + seconds(10), logical=3)
        merged = hlc.update(remote)
        assert merged > remote
        assert hlc.now() > merged

    def test_pack_orders_like_tuples(self):
        early = HlcTimestamp(100, 5)
        late = HlcTimestamp(101, 0)
        assert early.pack() < late.pack()
