"""Integration tests for RCP freshness machinery: heartbeats, collectors,
DDL fencing, and the replica safe-time wait."""

from repro import ClusterConfig, build_cluster, one_region
from repro.sim.units import ms


def idle_db(**overrides):
    db = build_cluster(ClusterConfig.globaldb(one_region(), **overrides))
    session = db.session()
    session.create_table("t", [("k", "int"), ("v", "int")], primary_key=["k"])
    session.begin()
    session.insert("t", {"k": 1, "v": 1})
    session.commit()
    return db, session


class TestHeartbeats:
    def test_rcp_advances_on_idle_cluster_gclock(self):
        db, session = idle_db()
        db.run_for(0.3)
        first = session.rcp
        db.run_for(1.0)  # no transactions at all
        assert session.rcp > first  # heartbeats kept the frontier moving

    def test_rcp_advances_on_idle_cluster_gtm(self):
        db = build_cluster(ClusterConfig.baseline(one_region(),
                                                  ror_enabled=True))
        session = db.session()
        session.create_table("t", [("k", "int")], primary_key=["k"])
        session.begin()
        session.insert("t", {"k": 1})
        commit_ts = session.commit()
        db.run_for(0.5)
        # In GTM mode timestamps are counters: heartbeats re-advertise the
        # frontier so the RCP reaches the last commit even with no load.
        assert session.rcp >= commit_ts

    def test_heartbeats_reach_every_replica(self):
        db, _session = idle_db()
        before = {replica.store.max_commit_ts
                  for replica_list in db.replicas.values()
                  for replica in replica_list}
        db.run_for(1.0)
        for replica_list in db.replicas.values():
            for replica in replica_list:
                assert replica.store.max_commit_ts > max(before)

    def test_only_collector_sends_heartbeats(self):
        db, _session = idle_db()
        db.run_for(0.5)
        collectors = [cn for cn in db.cns if cn.is_collector]
        assert len(collectors) == len(db.config.topology.regions)


class TestRcpProperties:
    def test_rcp_never_exceeds_any_replica_frontier(self):
        db, session = idle_db()
        for _ in range(10):
            db.run_for(0.1)
            rcp = session.rcp
            for replica_list in db.replicas.values():
                for replica in replica_list:
                    assert replica.store.max_commit_ts >= rcp

    def test_rcp_monotone_under_load(self):
        db, session = idle_db()
        observed = []
        for i in range(10):
            session.begin()
            session.update("t", (1,), {"v": i})
            session.commit()
            db.run_for(0.05)
            observed.append(session.rcp)
        assert observed == sorted(observed)

    def test_collector_skips_failed_replica(self):
        db, session = idle_db()
        db.run_for(0.2)
        victim = db.replicas[3][0]
        victim.fail()
        stuck_frontier = victim.store.max_commit_ts
        db.run_for(0.5)
        # RCP moved past the dead replica's frozen frontier.
        assert session.rcp > stuck_frontier

    def test_rcp_respects_paused_shipping(self):
        """A live replica that stops receiving redo holds the RCP back —
        the correct (consistency-preserving) behaviour."""
        db, session = idle_db()
        db.run_for(0.2)
        target = db.replicas[0][0]
        for shipper in db.shippers:
            if shipper.dst == target.name:
                shipper.pause()
        frozen = target.store.max_commit_ts
        db.run_for(0.5)
        assert session.rcp <= frozen


class TestDdlFencing:
    def test_reads_after_ddl_fall_back_until_replayed(self):
        db, session = idle_db()
        db.run_for(0.3)
        session.create_table("t2", [("k", "int"), ("v", "int")],
                             primary_key=["k"])
        session.begin()
        session.insert("t2", {"k": 1, "v": 7})
        session.commit()
        cn = session.cn
        ror_before = cn.ror_reads
        # Immediately: the RCP is behind the DDL timestamp, so the read
        # must be served by a primary (rule 1 and 2 both fail).
        reader = db.session(cn=cn)
        row = reader.read_only("t2", (1,))
        assert row == {"k": 1, "v": 7}
        assert cn.ror_reads == ror_before  # no replica was asked

    def test_reads_use_replicas_once_ddl_replayed(self):
        db, session = idle_db()
        session.create_table("t2", [("k", "int"), ("v", "int")],
                             primary_key=["k"])
        session.begin()
        session.insert("t2", {"k": 1, "v": 7})
        session.commit()
        db.run_for(1.0)  # DDL + data replayed everywhere; RCP catches up
        reader = db.session(cn=session.cn)
        ror_before = session.cn.ror_reads
        # The skyline spreads equal-latency reads over replicas *and* the
        # local primary; several reads make replica usage deterministic.
        for _ in range(10):
            row = reader.read_only("t2", (1,))
            assert row == {"k": 1, "v": 7}
        assert session.cn.ror_reads > ror_before

    def test_per_table_fence_allows_unrelated_tables(self):
        """Rule 2: after a DDL on one table, reads of *other* tables can
        still use replicas (their DDL timestamps are old)."""
        db, session = idle_db()
        db.run_for(0.5)
        session.create_table("brand_new", [("k", "int")], primary_key=["k"])
        cn = session.cn
        ror_before = cn.ror_reads
        reader = db.session(cn=cn)
        for _ in range(10):
            reader.read_only("t", (1,))  # the old table
        assert cn.ror_reads > ror_before


class TestSafeTimeWait:
    def test_replica_read_waits_for_frontier(self):
        """A read routed at a snapshot the replica has not replayed yet
        blocks until replay catches up — never returns a hole."""
        db, session = idle_db()
        db.run_for(0.3)
        shard = db.shard_map.shard_for_key("t", (1,))
        replica = db.replicas[shard][0]
        target_ts = replica.store.max_commit_ts + ms(50)
        outcome = []

        def reader():
            row = yield from _read_at(replica, target_ts)
            outcome.append((row, db.env.now))

        def _read_at(replica, read_ts):
            from repro.storage.snapshot import Snapshot
            yield from replica.store.wait_frontier(read_ts)
            result = yield from replica.store.read_waiting(
                "t", (1,), Snapshot(read_ts))
            return result

        db.env.process(reader())
        db.run_for(0.01)
        assert not outcome  # still waiting for the frontier
        db.run_for(0.5)     # heartbeats advance the frontier past target
        assert outcome and outcome[0][0] is not None
