"""Property tests: recycled WAL shells are unobservable to replayers.

PR 9 made :meth:`WalBuffer.truncate_below` recycle redo-record *shells*
into per-type pools for the engine to reuse. The safety argument is that
truncation only ever removes the prefix below every replica's applied
LSN, so no catch-up or in-flight delivery can hand a recycled (and later
repurposed) object to a replayer. These properties drive a model of that
protocol — random append/apply/truncate interleavings with multiple
replica cursors — and assert, by object identity, that:

- nothing a replica is still entitled to read (``records_from`` at or
  above its applied LSN) is ever aliased with a pooled shell;
- shells handed back out by :meth:`WalBuffer.take` never alias the live
  window either;
- catch-up slices stay dense, ordered, and start exactly past the
  requested LSN — truncation never creates a gap a replayer could skip.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given

from repro.storage.redo import (
    RedoCommit,
    RedoHeartbeat,
    RedoInsert,
    RedoUpdate,
)
from repro.storage.wal import WalBuffer

RECORD_MAKERS = (
    lambda txid: RedoInsert(txid, table="t", key=(txid,),
                            row={"balance": txid}),
    lambda txid: RedoUpdate(txid, table="t", key=(txid,),
                            row={"balance": txid + 1}),
    lambda txid: RedoCommit(txid, commit_ts=txid * 10),
    lambda txid: RedoHeartbeat(0, commit_ts=txid * 10),
)

# A step is (record_kind, advance_replica_a, advance_replica_b,
# truncate_now); hypothesis drives the interleaving.
steps = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=3),
              st.booleans()),
    min_size=1, max_size=60)


def _pooled_ids(wal: WalBuffer) -> set[int]:
    return {id(record) for pool in wal._pools.values() for record in pool}


@given(steps)
def test_replayer_never_observes_recycled_shells(script):
    wal = WalBuffer()
    applied = {"a": 0, "b": 0}  # replica applied-LSN cursors
    for kind, advance_a, advance_b, truncate in script:
        record = RECORD_MAKERS[kind](wal.last_lsn + 1)
        wal.append(record)
        # Replicas apply some prefix of what exists (never beyond it).
        applied["a"] = min(wal.last_lsn, applied["a"] + advance_a)
        applied["b"] = min(wal.last_lsn, applied["b"] + advance_b)
        if truncate:
            # The protocol invariant: truncate at most one past the
            # minimum applied LSN.
            wal.truncate_below(min(applied.values()) + 1)

        pooled = _pooled_ids(wal)
        # Live window never aliases the pools.
        assert all(id(rec) not in pooled for rec in wal._records)
        # Everything any replica may still request is live and dense.
        for cursor in applied.values():
            batch = wal.records_from(cursor)
            lsns = [rec.lsn for rec in batch]
            assert lsns == list(range(cursor + 1, wal.last_lsn + 1))
            assert all(id(rec) not in pooled for rec in batch)


@given(steps)
def test_taken_shells_do_not_alias_live_window(script):
    wal = WalBuffer()
    applied = 0
    for kind, advance, _unused, truncate in script:
        wal.append(RECORD_MAKERS[kind](wal.last_lsn + 1))
        applied = min(wal.last_lsn, applied + advance)
        if truncate:
            wal.truncate_below(applied + 1)
    live = {id(rec) for rec in wal._records}
    for cls in (RedoInsert, RedoUpdate, RedoCommit, RedoHeartbeat):
        while (shell := wal.take(cls)) is not None:
            assert id(shell) not in live
            # Pooled insert/update shells must not pin row payloads.
            if isinstance(shell, (RedoInsert, RedoUpdate)):
                assert shell.row is None


@given(steps)
def test_pooling_off_is_equivalent_except_for_reuse(script):
    pooled, plain = WalBuffer(pooling=True), WalBuffer(pooling=False)
    applied = 0
    for kind, advance, _unused, truncate in script:
        pooled.append(RECORD_MAKERS[kind](pooled.last_lsn + 1))
        plain.append(RECORD_MAKERS[kind](plain.last_lsn + 1))
        applied = min(pooled.last_lsn, applied + advance)
        if truncate:
            assert (pooled.truncate_below(applied + 1)
                    == plain.truncate_below(applied + 1))
    assert pooled.last_lsn == plain.last_lsn
    assert pooled.start_lsn == plain.start_lsn
    assert [rec.lsn for rec in pooled.records_from(applied)] == \
        [rec.lsn for rec in plain.records_from(applied)]
    assert not plain._pools
