"""Network partitions: drops, stalls, and recovery with catch-up."""

import pytest

from repro import ClusterConfig, TransactionAborted, build_cluster, three_city
from repro.sim import Environment, ms
from repro.sim.network import Network


class TestPartitionPrimitive:
    def test_blocked_link_drops_messages(self):
        env = Environment()
        net = Network(env)
        net.add_endpoint("a", "east")
        net.add_endpoint("b", "west")
        net.set_link("a", "b", latency_ns=ms(1))
        received = []
        net.set_handler("b", lambda msg: received.append(msg.payload))
        net.set_partition("east", "west")
        net.send("a", "b", "lost")
        env.run()
        assert received == []
        assert net.messages_dropped == 1

    def test_heal_restores_delivery(self):
        env = Environment()
        net = Network(env)
        net.add_endpoint("a", "east")
        net.add_endpoint("b", "west")
        net.set_link("a", "b", latency_ns=ms(1))
        received = []
        net.set_handler("b", lambda msg: received.append(msg.payload))
        net.set_partition("east", "west")
        net.send("a", "b", "lost")
        net.set_partition("east", "west", blocked=False)
        net.send("a", "b", "found")
        env.run()
        assert received == ["found"]

    def test_partition_is_bidirectional(self):
        env = Environment()
        net = Network(env)
        net.add_endpoint("a", "east")
        net.add_endpoint("b", "west")
        net.set_link("a", "b", latency_ns=ms(1))
        net.set_partition("east", "west")
        assert net.link("a", "b").blocked
        assert net.link("b", "a").blocked

    def test_third_region_unaffected(self):
        env = Environment()
        net = Network(env)
        net.add_endpoint("a", "east")
        net.add_endpoint("b", "west")
        net.add_endpoint("c", "north")
        net.set_partition("east", "west")
        assert not net.link("a", "c").blocked
        assert not net.link("b", "c").blocked


class TestClusterUnderPartition:
    def build(self):
        db = build_cluster(ClusterConfig.globaldb(three_city()))
        session = db.session(region="xian")
        session.create_table("t", [("k", "int"), ("v", "int")],
                             primary_key=["k"])
        session.begin()
        for i in range(30):
            session.insert("t", {"k": i, "v": 0})
        session.commit()
        db.run_for(0.3)
        return db, session

    def local_key(self, db, region):
        for key in range(30):
            shard = db.shard_map.shard_for_key("t", (key,))
            if db.primaries[shard].region == region:
                return key
        raise AssertionError("no local key")

    def test_local_work_survives_remote_partition(self):
        """Xi'an <-> Dongguan is cut; a Xi'an client's local transactions
        keep committing (async replication means no remote dependency)."""
        db, session = self.build()
        db.network.set_partition("xian", "dongguan")
        key = self.local_key(db, "xian")
        session.begin()
        session.update("t", (key,), {"v": 1})
        ts = session.commit()
        assert ts > 0

    def test_cross_partition_write_aborts_cleanly(self):
        db, session = self.build()
        db.network.set_partition("xian", "dongguan")
        key = self.local_key(db, "dongguan")
        session.begin()
        with pytest.raises(TransactionAborted):
            session.update("t", (key,), {"v": 1})

    def test_rcp_stalls_during_partition_then_recovers(self):
        """Replicas behind the cut stop applying; the RCP (a min) stalls —
        consistency preserved — and resumes after healing via catch-up."""
        db, session = self.build()
        db.network.set_partition("xian", "dongguan")
        key = self.local_key(db, "xian")
        for i in range(5):
            session.begin()
            session.update("t", (key,), {"v": i})
            session.commit()
            db.run_for(0.1)
        stalled = session.rcp
        db.run_for(0.5)
        assert session.rcp == stalled  # frozen by the cut-off replicas
        db.network.set_partition("xian", "dongguan", blocked=False)
        db.run_for(1.0)
        assert session.rcp > stalled  # catch-up refilled the gap

    def test_replicas_behind_cut_catch_up_consistently(self):
        db, session = self.build()
        key = self.local_key(db, "xian")
        shard = db.shard_map.shard_for_key("t", (key,))
        cut_replica = next(replica for replica in db.replicas[shard]
                           if replica.region == "dongguan")
        db.network.set_partition("xian", "dongguan")
        session.begin()
        session.update("t", (key,), {"v": 77})
        commit_ts = session.commit()
        db.run_for(0.3)
        db.network.set_partition("xian", "dongguan", blocked=False)
        db.run_for(1.0)
        from repro.storage.snapshot import Snapshot
        row = cut_replica.store.read("t", (key,), Snapshot(commit_ts))
        assert row is not None and row["v"] == 77
        assert cut_replica.catchup_requests >= 1
