"""Observability layer (repro.obs): instruments, tracer, and run reports.

The end-to-end half of this file is the acceptance test for the layer:
a traced TPC-C run must produce spans in at least six categories and a
commit-latency breakdown whose components sum to within 5% of the
measured end-to-end p50 (by construction they agree exactly).
"""

import json

from repro import ClusterConfig, build_cluster, one_region
from repro.obs import (
    NULL_REGISTRY,
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunReport,
    Tracer,
    read_jsonl,
)
from repro.obs.metrics import SIZE_BUCKETS
from repro.obs.report import BREAKDOWN_COMPONENTS, extract_transactions
from repro.workloads import TpccConfig, TpccWorkload, run_workload
from repro.workloads.driver import WorkloadStats


class FakeEnv:
    """A bare clock: the only thing instruments may read."""

    def __init__(self):
        self.now = 0


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge_tracks_max(self):
        gauge = Gauge()
        gauge.set(10, now=100)
        gauge.set(3, now=200)
        assert gauge.value == 3
        assert gauge.max_value == 10
        assert gauge.updated_at == 200

    def test_histogram_exact_stats(self):
        hist = Histogram()
        for value in (1_000, 2_000, 5_000, 1_000_000):
            hist.record(value)
        assert hist.count == 4
        assert hist.sum == 1_008_000
        assert hist.min == 1_000
        assert hist.max == 1_000_000
        assert hist.mean == 252_000.0

    def test_histogram_percentiles_clamped_to_observed_range(self):
        hist = Histogram()
        for value in (3_000, 4_000, 900_000):
            hist.record(value)
        for pct in (1, 50, 99):
            assert hist.min <= hist.percentile(pct) <= hist.max

    def test_histogram_percentile_monotone(self):
        hist = Histogram()
        for value in range(1_000, 2_000_000, 37_000):
            hist.record(value)
        estimates = [hist.percentile(pct) for pct in (10, 50, 90, 99)]
        assert estimates == sorted(estimates)

    def test_histogram_overflow_bucket(self):
        hist = Histogram(buckets=SIZE_BUCKETS)
        hist.record(10 ** 9)  # above the last bound
        bounds, counts = zip(*hist.bucket_counts())
        assert bounds[-1] == float("inf")
        assert counts[-1] == 1

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.percentile(50) == 0.0
        assert hist.mean == 0.0


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_instruments_cached_by_name_and_labels(self):
        registry = MetricsRegistry()
        assert registry.counter("a", node="x") is registry.counter("a", node="x")
        assert registry.counter("a", node="x") is not registry.counter("a", node="y")
        assert registry.counter("a") is not registry.histogram("a")

    def test_set_gauge_stamps_sim_time(self):
        env = FakeEnv()
        registry = MetricsRegistry(env)
        env.now = 777
        registry.set_gauge("lag", 42, node="r1")
        assert registry.gauge("lag", node="r1").updated_at == 777

    def test_snapshot_shapes(self):
        registry = MetricsRegistry(FakeEnv())
        registry.counter("msgs").inc(3)
        registry.set_gauge("depth", 9)
        registry.histogram("lat").record(5_000)
        rows = {row["name"]: row for row in registry.snapshot()}
        assert rows["msgs"]["value"] == 3
        assert rows["depth"]["value"] == 9
        assert rows["lat"]["count"] == 1
        json.dumps(registry.snapshot())  # must stay serializable

    def test_window_deltas(self):
        env = FakeEnv()
        registry = MetricsRegistry(env)
        counter = registry.counter("msgs")
        counter.inc(10)
        env.now = 1_000
        registry.begin_window()
        counter.inc(4)
        registry.counter("late").inc(2)  # created inside the window
        env.now = 3_000
        window = registry.window_snapshot()
        assert window["window_ns"] == 2_000
        deltas = {row["name"]: row["delta"] for row in window["instruments"]}
        assert deltas["msgs"] == 4
        assert deltas["late"] == 2

    def test_null_registry_is_inert(self):
        assert not NULL_REGISTRY.enabled
        NULL_REGISTRY.counter("x", node="y").inc()
        NULL_REGISTRY.set_gauge("x", 1)
        NULL_REGISTRY.histogram("x").record(5)
        assert NULL_REGISTRY.snapshot() == []
        assert NULL_REGISTRY.window_snapshot()["instruments"] == []


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_start_finish_uses_sim_time_and_nests(self):
        env = FakeEnv()
        tracer = Tracer(env)
        outer = tracer.start("txn", "outer", track="cn1")
        env.now = 10
        inner = tracer.start("txn", "inner", track="cn1")
        env.now = 25
        inner.finish()
        env.now = 40
        outer.finish(ok=True)
        assert [span.name for span in tracer.spans] == ["inner", "outer"]
        assert inner.depth == 1 and outer.depth == 0
        assert outer.start == 0 and outer.end == 40
        assert outer.args == {"ok": True}

    def test_complete_and_instant(self):
        env = FakeEnv()
        env.now = 50
        tracer = Tracer(env)
        tracer.complete("net", "msg", 10, 30, track="a->b", size=64)
        tracer.instant("gtm", "tick")
        spans = tracer.spans
        assert spans[0].duration_ns == 20
        assert spans[1].start == spans[1].end == 50

    def test_max_spans_cap_counts_drops(self):
        tracer = Tracer(FakeEnv(), max_spans=2)
        for i in range(5):
            tracer.complete("txn", f"s{i}", 0, 1)
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_aggregation(self):
        tracer = Tracer(FakeEnv())
        tracer.complete("net", "msg", 0, 5)
        tracer.complete("net", "msg", 0, 7)
        tracer.complete("wal", "flush", 0, 3)
        assert tracer.counts_by_category() == {"net": 2, "wal": 1}
        assert tracer.duration_by_category() == {"net": 12, "wal": 3}
        assert len(tracer.spans_in("net", "msg")) == 2

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(FakeEnv())
        tracer.complete("txn", "commit", 100, 250, track="cn1",
                        txid=7, mode="gclock")
        path = tmp_path / "trace.jsonl"
        assert tracer.to_jsonl(path) == 1
        [span] = read_jsonl(path)
        assert span["cat"] == "txn" and span["name"] == "commit"
        assert span["start_ns"] == 100 and span["end_ns"] == 250
        assert span["args"]["txid"] == 7

    def test_chrome_trace_format(self):
        tracer = Tracer(FakeEnv())
        tracer.complete("txn", "commit", 1_000, 3_000, track="cn1")
        tracer.complete("gtm", "tick", 500, 500, track="gtm")
        trace = tracer.chrome_trace()
        json.dumps(trace)  # loadable by chrome://tracing
        events = trace["traceEvents"]
        names = {event["args"].get("name") for event in events
                 if event["ph"] == "M"}
        assert {"repro-sim", "cn1", "gtm"} <= names
        complete = [e for e in events if e["ph"] == "X"]
        instant = [e for e in events if e["ph"] == "i"]
        assert complete[0]["ts"] == 1.0 and complete[0]["dur"] == 2.0  # us
        assert len(instant) == 1

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        span = NULL_TRACER.start("txn", "x")
        assert span.finish(ok=True) is span
        NULL_TRACER.complete("txn", "x", 0, 1)
        NULL_TRACER.instant("txn", "x")
        assert NULL_TRACER.spans == []


# ----------------------------------------------------------------------
# Breakdown extraction
# ----------------------------------------------------------------------
class TestExtractTransactions:
    def _traced_txn(self, tracer, txid, base):
        tracer.complete("txn", "begin", base, base + 10, txid=txid)
        tracer.complete("txn", "execute", base + 10, base + 50, txid=txid)
        tracer.complete("txn", "commit", base + 50, base + 80, txid=txid)
        tracer.complete("ts", "commit_wait", base + 52, base + 60, txid=txid)
        # Two parallel shard flushes: the longer one is the critical path.
        tracer.complete("wal", "flush", base + 60, base + 65, txid=txid)
        tracer.complete("wal", "flush", base + 60, base + 70, txid=txid)

    def test_components_sum_to_total(self):
        tracer = Tracer(FakeEnv())
        self._traced_txn(tracer, txid=1, base=0)
        [txn] = extract_transactions(tracer.spans)
        parts = txn.components()
        assert set(parts) == set(BREAKDOWN_COMPONENTS)
        assert sum(parts.values()) == txn.total == 80
        assert parts["commit wait"] == 8
        assert parts["log flush / acks"] == 10  # max, not sum

    def test_incomplete_and_unlabelled_spans_ignored(self):
        tracer = Tracer(FakeEnv())
        tracer.complete("txn", "begin", 0, 10, txid=9)  # no execute/commit
        tracer.complete("txn", "new_order", 0, 80)      # driver span, no txid
        assert extract_transactions(tracer.spans) == []

    def test_window_filter(self):
        tracer = Tracer(FakeEnv())
        self._traced_txn(tracer, txid=1, base=0)      # commit ends at 80
        self._traced_txn(tracer, txid=2, base=1_000)  # commit ends at 1080
        inside = extract_transactions(tracer.spans, window=(500, 2_000))
        assert [txn.txid for txn in inside] == [2]


# ----------------------------------------------------------------------
# WorkloadStats (satellite: cached percentiles + summary)
# ----------------------------------------------------------------------
class TestWorkloadStats:
    def test_percentile_cache_invalidated_by_record(self):
        stats = WorkloadStats()
        for latency in (5, 1, 9):
            stats.record("t", latency, ok=True)
        assert stats.latency_percentile_ms(50) == 5 / 1e6
        stats.record("t", 100, ok=True)  # must drop the cached sort
        assert stats.latency_percentile_ms(100) == 100 / 1e6
        assert stats.latencies_ns == [5, 1, 9, 100]  # insertion order kept

    def test_summary(self):
        stats = WorkloadStats(window_ns=1_000_000_000)
        stats.record("t", 2_000_000, ok=True)
        stats.record("t", 4_000_000, ok=True)
        stats.record("t", 0, ok=False)
        summary = stats.summary()
        assert summary["committed"] == 2 and summary["aborted"] == 1
        assert summary["throughput_per_s"] == 2.0
        assert summary["mean_ms"] == 3.0
        assert summary["p50_ms"] == 2.0 or summary["p50_ms"] == 4.0
        json.dumps(summary)


# ----------------------------------------------------------------------
# End to end: traced run -> report (the layer's acceptance criteria)
# ----------------------------------------------------------------------
def _traced_run():
    db = build_cluster(ClusterConfig.globaldb(
        one_region(), seed=1, metrics_enabled=True, trace_enabled=True))
    workload = TpccWorkload(TpccConfig(
        warehouses=2, districts_per_warehouse=2, customers_per_district=10,
        items=20, initial_orders_per_district=5, seed=7))
    result = run_workload(db, workload, terminals=6, duration_s=0.5,
                          warmup_s=0.1)
    return db, result


class TestRunReport:
    def test_traced_run_report(self):
        db, result = _traced_run()
        report = RunReport.capture(db, result)

        # Acceptance: spans in at least six distinct categories.
        assert len(report.category_counts) >= 6, report.category_counts

        # Acceptance: breakdown components within 5% of measured e2e p50
        # (exact by construction — the spans partition the interval).
        assert report.transactions, "no read-write transactions traced"
        assert report.breakdown_error() <= 0.05
        median = report.median_transaction()
        assert sum(median.components().values()) == median.total

        # The chrome export of a real run must be valid JSON.
        trace = db.env.tracer.chrome_trace()
        assert json.loads(json.dumps(trace))["traceEvents"]

        rendered = report.render()
        assert "commit latency breakdown" in rendered
        assert "timestamp acquisition" in rendered
        json.dumps(report.to_dict())

    def test_report_without_tracing_is_graceful(self):
        db = build_cluster(ClusterConfig.globaldb(one_region(), seed=1))
        db.run_for(0.05)
        report = RunReport.capture(db)
        assert report.category_counts == {}
        assert report.breakdown_error() == 0.0
        assert "no traced read-write transactions" in report.render()
