"""Tests for the shard map, topologies, and placement."""

import pytest

from repro import ClusterConfig, build_cluster, one_region, three_city, two_region
from repro.cluster.sharding import ShardMap, stable_hash
from repro.cluster.topology import chain_topology
from repro.errors import StorageError
from repro.sim.units import ms, us
from repro.storage.catalog import ColumnDef, DistributionSpec, TableSchema


def hash_schema(name="t"):
    return TableSchema(name, [ColumnDef("k", "int"), ColumnDef("v", "int")],
                       ("k",))


class TestShardMap:
    def test_hash_distribution_is_stable(self):
        shard_map = ShardMap(6)
        shard_map.register(hash_schema())
        first = [shard_map.shard_for_value("t", key) for key in range(50)]
        second = [shard_map.shard_for_value("t", key) for key in range(50)]
        assert first == second
        assert len(set(first)) > 1  # keys actually spread

    def test_stable_hash_is_deterministic_across_runs(self):
        # Unlike builtin hash(), which is salted per process.
        assert stable_hash(42) == stable_hash(42)
        assert stable_hash("abc") != stable_hash("abd")

    def test_range_distribution(self):
        shard_map = ShardMap(3)
        schema = TableSchema("r", [ColumnDef("k", "int")], ("k",),
                             distribution=DistributionSpec("range", "k"))
        shard_map.register(schema, range_bounds=[(100, 0), (200, 1), (None, 2)])
        assert shard_map.shard_for_value("r", 50) == 0
        assert shard_map.shard_for_value("r", 150) == 1
        assert shard_map.shard_for_value("r", 999) == 2

    def test_range_needs_bounds(self):
        shard_map = ShardMap(3)
        schema = TableSchema("r", [ColumnDef("k", "int")], ("k",),
                             distribution=DistributionSpec("range", "k"))
        with pytest.raises(StorageError):
            shard_map.register(schema)

    def test_replicated_table_writes_every_shard(self):
        shard_map = ShardMap(4)
        schema = TableSchema("rep", [ColumnDef("k", "int")], ("k",),
                             distribution=DistributionSpec("replicated"))
        shard_map.register(schema)
        assert shard_map.write_shards("rep", {"k": 1}) == [0, 1, 2, 3]
        assert shard_map.shard_for_key("rep", (1,)) is None

    def test_missing_distribution_column_rejected(self):
        shard_map = ShardMap(2)
        shard_map.register(hash_schema())
        with pytest.raises(StorageError):
            shard_map.shard_for_row("t", {"v": 1})

    def test_key_outside_pk_distribution(self):
        shard_map = ShardMap(2)
        schema = TableSchema(
            "odd", [ColumnDef("k", "int"), ColumnDef("region", "text")],
            ("k",), distribution=DistributionSpec("hash", "region"))
        shard_map.register(schema)
        # PK lookup cannot determine the shard.
        assert shard_map.shard_for_key("odd", (1,)) is None

    def test_unregistered_table_rejected(self):
        shard_map = ShardMap(2)
        with pytest.raises(StorageError):
            shard_map.schema("nope")


class TestTopology:
    def test_three_city_latencies_match_paper(self):
        topology = three_city()
        assert topology.latency_ns("xian", "langzhong") == ms(25)
        assert topology.latency_ns("langzhong", "dongguan") == ms(35)
        assert topology.latency_ns("xian", "dongguan") == ms(55)
        # Symmetric.
        assert topology.latency_ns("dongguan", "xian") == ms(55)

    def test_one_region_is_three_servers(self):
        topology = one_region()
        assert len(topology.regions) == 3
        assert topology.latency_ns("server1", "server2") == us(50)

    def test_chain_topology_scales_with_hops(self):
        topology = chain_topology(4, hop_latency_ns=ms(10))
        assert topology.latency_ns("region0", "region1") == ms(10)
        assert topology.latency_ns("region0", "region3") == ms(30)

    def test_intra_region_latency(self):
        topology = two_region()
        assert topology.latency_ns("east", "east") == topology.intra_latency_ns


class TestPlacement:
    def test_paper_cluster_shape(self):
        """3 CNs, 6 primaries, 12 replicas; each server hosts 1 CN, 2
        primaries, 4 replicas (the paper's layout)."""
        db = build_cluster(ClusterConfig.globaldb(three_city()))
        assert len(db.cns) == 3
        assert len(db.primaries) == 6
        assert sum(len(r) for r in db.replicas.values()) == 12
        for region in ("xian", "langzhong", "dongguan"):
            primaries_here = [p for p in db.primaries if p.region == region]
            replicas_here = [r for rl in db.replicas.values() for r in rl
                             if r.region == region]
            assert len(primaries_here) == 2
            assert len(replicas_here) == 4

    def test_replicas_never_share_region_with_primary_multi_region(self):
        db = build_cluster(ClusterConfig.globaldb(three_city()))
        for shard, replica_list in db.replicas.items():
            primary_region = db.primaries[shard].region
            for replica in replica_list:
                assert replica.region != primary_region

    def test_gtm_placed_at_lowest_mean_latency_region(self):
        db = build_cluster(ClusterConfig.globaldb(three_city()))
        # Langzhong: mean((25+35)/2)=30 < Xi'an 40 < Dongguan 45.
        assert db.gtm.region == "langzhong"

    def test_explicit_gtm_region_respected(self):
        db = build_cluster(ClusterConfig.globaldb(three_city(),
                                                  gtm_region="dongguan"))
        assert db.gtm.region == "dongguan"

    def test_every_shard_has_a_node_in_every_region(self):
        """What makes local reads always possible in the paper's layout."""
        db = build_cluster(ClusterConfig.globaldb(three_city()))
        for shard in range(6):
            regions = {db.primaries[shard].region}
            regions.update(r.region for r in db.replicas[shard])
            assert regions == {"xian", "langzhong", "dongguan"}

    def test_injected_delay_spares_same_server_links(self):
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        db.inject_delay_all(ms(50))
        cn = db.cns[0]
        same_server_dn = next(p for p in db.primaries
                              if p.region == cn.region)
        other_dn = next(p for p in db.primaries if p.region != cn.region)
        assert db.network.link(cn.name, same_server_dn.name).extra_delay_ns == 0
        assert db.network.link(cn.name, other_dn.name).extra_delay_ns == ms(50)
