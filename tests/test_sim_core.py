"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt
from repro.sim.events import PRIORITY_URGENT


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(100)
        return env.now

    result = env.run(until=env.process(proc()))
    assert result == 100
    assert env.now == 100


def test_timeout_value_is_delivered():
    env = Environment()

    def proc():
        value = yield env.timeout(5, value="hello")
        return value

    assert env.run(until=env.process(proc())) == "hello"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_run_until_time_stops_exactly():
    env = Environment()
    fired = []

    def proc():
        while True:
            yield env.timeout(10)
            fired.append(env.now)

    env.process(proc())
    env.run(until=35)
    assert fired == [10, 20, 30]
    assert env.now == 35


def test_run_backwards_rejected():
    env = Environment()
    env.run(until=100)
    with pytest.raises(SimulationError):
        env.run(until=50)


def test_processes_interleave_deterministically():
    env = Environment()
    order = []

    def worker(name, delay):
        yield env.timeout(delay)
        order.append(name)

    env.process(worker("slow", 20))
    env.process(worker("fast", 10))
    env.process(worker("tie-a", 15))
    env.process(worker("tie-b", 15))
    env.run()
    # Ties break by creation order of the timeout events.
    assert order == ["fast", "tie-a", "tie-b", "slow"]


def test_process_return_value_propagates_to_joiner():
    env = Environment()

    def child():
        yield env.timeout(1)
        return 42

    def parent():
        value = yield env.process(child())
        return value * 2

    assert env.run(until=env.process(parent())) == 84


def test_process_exception_propagates_to_joiner():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise ValueError("boom")

    def parent():
        try:
            yield env.process(child())
        except ValueError as exc:
            return f"caught {exc}"

    assert env.run(until=env.process(parent())) == "caught boom"


def test_unhandled_process_exception_surfaces():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise ValueError("unseen")

    env.process(child())
    with pytest.raises(ValueError, match="unseen"):
        env.run()


def test_event_succeed_once_only():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")


def test_yield_non_event_is_an_error():
    env = Environment()

    def proc():
        yield 42

    env.process(proc())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_interrupt_wakes_waiting_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(1000)
            log.append("slept")
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, env.now))

    proc = env.process(sleeper())

    def interrupter():
        yield env.timeout(50)
        proc.interrupt(cause="failover")

    env.process(interrupter())
    env.run()
    assert log == [("interrupted", "failover", 50)]


def test_interrupt_finished_process_is_an_error():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_any_of_fires_on_first():
    env = Environment()

    def proc():
        fast = env.timeout(10, value="fast")
        slow = env.timeout(100, value="slow")
        result = yield env.any_of([fast, slow])
        return (fast in result, slow in result, env.now)

    assert env.run(until=env.process(proc())) == (True, False, 10)


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc():
        events = [env.timeout(delay, value=delay) for delay in (5, 15, 10)]
        result = yield env.all_of(events)
        return sorted(result.todict().values()), env.now

    values, when = env.run(until=env.process(proc()))
    assert values == [5, 10, 15]
    assert when == 15


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc():
        yield env.all_of([])
        return env.now

    assert env.run(until=env.process(proc())) == 0


def test_condition_failure_propagates():
    env = Environment()

    def proc():
        good = env.timeout(10)
        bad = env.event()
        bad.fail(RuntimeError("child failed"))
        try:
            yield env.all_of([good, bad])
        except RuntimeError as exc:
            return str(exc)

    assert env.run(until=env.process(proc())) == "child failed"


def test_run_until_event_returns_value():
    env = Environment()
    event = env.event()

    def firer():
        yield env.timeout(7)
        event.succeed("payload")

    env.process(firer())
    assert env.run(until=event) == "payload"
    assert env.now == 7


def test_run_until_never_firing_event_is_error():
    env = Environment()
    with pytest.raises(SimulationError, match="drained"):
        env.run(until=env.event())


def test_urgent_priority_runs_first():
    env = Environment()
    order = []

    normal = env.event()
    urgent = env.event()
    normal._ok = True
    urgent._ok = True
    normal.callbacks.append(lambda _e: order.append("normal"))
    urgent.callbacks.append(lambda _e: order.append("urgent"))
    env.schedule(normal, delay=10)
    env.schedule(urgent, delay=10, priority=PRIORITY_URGENT)
    env.run()
    assert order == ["urgent", "normal"]


def test_peek_and_step():
    env = Environment()
    env.timeout(30)
    assert env.peek() == 30
    env.step()
    assert env.now == 30
    assert env.peek() is None
    with pytest.raises(SimulationError):
        env.step()
