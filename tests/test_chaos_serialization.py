"""Property tests: the chaos schedule codec is total and canonical.

The :mod:`repro.explore` mutation/replay surface serializes fault
schedules to JSON and back; these properties pin the contract for every
injector kind the registry knows:

- round-tripping preserves the injector kind and its configuration,
- the canonical JSON is a fixed point (one pass through the codec makes
  any float canonical; a second pass is byte-identical),
- equal schedules hash to equal digests, and renaming changes the digest
  (the name seeds the chaos randomness, so it is identity-bearing).
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.chaos import (
    INJECTOR_KINDS,
    FaultSchedule,
    FaultSpec,
    injector_from_dict,
    injector_to_dict,
)
from repro.chaos.injectors import (
    AsymmetricPartition,
    BandwidthCollapse,
    ClockDriftBurst,
    ClockStep,
    GtmOutage,
    JitterStorm,
    LatencySpike,
    LinkCut,
    MigrationUnderFire,
    NodeCrash,
    RegionPartition,
    RegionSplit,
    SyncOutage,
)

REGIONS = ("xian", "langzhong", "dongguan", "primary", "standby")
NODES = ("dn0", "dn3", "dn0r1", "dn5r0", "cn-xian-0", "gtms")

regions = st.sampled_from(REGIONS)
maybe_region = st.one_of(st.none(), regions)
nodes = st.sampled_from(NODES)
# Positive magnitudes an operator would plausibly type; the codec must
# canonicalize them (ns resolution) without losing the configured value.
magnitudes = st.floats(min_value=0.001, max_value=500.0,
                       allow_nan=False, allow_infinity=False)

region_pairs = st.tuples(regions, regions).filter(lambda ab: ab[0] != ab[1])

injectors = st.one_of(
    region_pairs.map(lambda ab: RegionPartition(*ab)),
    region_pairs.map(lambda ab: AsymmetricPartition(*ab)),
    regions.map(RegionSplit),
    regions.map(SyncOutage),
    st.tuples(nodes, nodes).map(lambda sd: LinkCut(*sd)),
    st.tuples(magnitudes, maybe_region, maybe_region).map(
        lambda args: LatencySpike(extra_ms=args[0], region_a=args[1],
                                  region_b=args[2])),
    magnitudes.map(lambda value: JitterStorm(jitter_ms=value)),
    st.floats(min_value=1.5, max_value=1000.0).map(
        lambda value: BandwidthCollapse(factor=value)),
    st.tuples(st.sampled_from(("primary", "replica", "cn")),
              st.one_of(st.none(), nodes)).map(
        lambda args: NodeCrash(args[0], node=args[1])),
    st.tuples(regions, st.floats(min_value=1.1, max_value=50.0)).map(
        lambda args: ClockDriftBurst(args[0], factor=args[1])),
    st.tuples(magnitudes, maybe_region).map(
        lambda args: ClockStep(step_us=args[0], region=args[1])),
    st.just(GtmOutage()),
    st.just(MigrationUnderFire()),
)


@st.composite
def fault_specs(draw):
    injector = draw(injectors)
    at_s = round(draw(st.floats(min_value=0.0, max_value=10.0)), 3)
    duration_s = round(draw(st.floats(min_value=0.0, max_value=2.0)), 3)
    if draw(st.booleans()) and duration_s >= 0:
        every_s = round(duration_s + draw(
            st.floats(min_value=0.05, max_value=2.0)), 3)
        return FaultSpec(injector, at_s=at_s, duration_s=duration_s,
                         every_s=every_s,
                         repeat=draw(st.integers(min_value=1, max_value=5)))
    return FaultSpec(injector, at_s=at_s, duration_s=duration_s)


schedules = st.builds(
    FaultSchedule,
    name=st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                 min_size=1, max_size=20),
    specs=st.lists(fault_specs(), max_size=6).map(tuple),
)


@given(injectors)
def test_injector_roundtrip_preserves_kind_and_config(injector):
    data = injector_to_dict(injector)
    rebuilt = injector_from_dict(data)
    assert type(rebuilt) is type(injector)
    assert rebuilt.name == injector.name
    # One pass canonicalizes (ns-resolution rounding); the second is exact.
    assert injector_to_dict(rebuilt) == injector_to_dict(
        injector_from_dict(injector_to_dict(rebuilt)))


@given(fault_specs())
def test_fault_spec_roundtrip(spec):
    rebuilt = FaultSpec.from_dict(spec.to_dict())
    assert rebuilt.at_s == spec.at_s
    assert rebuilt.duration_s == spec.duration_s
    assert rebuilt.every_s == spec.every_s
    assert rebuilt.repeat == spec.repeat
    assert type(rebuilt.injector) is type(spec.injector)


@given(schedules)
def test_schedule_json_is_a_fixed_point(schedule):
    once = FaultSchedule.from_json(schedule.to_json())
    twice = FaultSchedule.from_json(once.to_json())
    assert once.to_json() == twice.to_json()
    assert once.digest() == twice.digest()
    assert once.name == schedule.name
    assert len(once.specs) == len(schedule.specs)


@given(schedules)
def test_schedule_rename_changes_digest(schedule):
    renamed = FaultSchedule(schedule.name + "x", schedule.specs)
    assert renamed.digest() != schedule.digest()


def test_every_registered_kind_is_constructible_from_empty_params():
    # The registry is the codec's domain: every kind must at least accept
    # its own params() output (defaults included).
    for kind, cls in sorted(INJECTOR_KINDS.items()):
        instance = (cls("xian", "dongguan") if kind in
                    ("region-partition", "asymmetric-partition")
                    else cls("xian", "dongguan") if kind == "link-cut"
                    else cls("xian") if kind in ("region-split",
                                                 "sync-outage",
                                                 "clock-drift-burst")
                    else cls())
        rebuilt = injector_from_dict(injector_to_dict(instance))
        assert rebuilt.name == kind


def test_unknown_kind_raises():
    with pytest.raises((ValueError, KeyError)):
        injector_from_dict({"kind": "disk-on-fire", "params": {}})
