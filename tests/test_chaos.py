"""repro.chaos: injectors must heal exactly; nemeses must be deterministic.

Two properties carry the whole chaos engine:

1. **Exact healing** — after ``inject`` + ``heal`` the cluster's fault
   surfaces (link state, endpoint liveness, node failure flags, time
   devices, clock drift parameters) are back to their pre-fault values.
   A leaky heal would poison every later window in a schedule.
2. **Determinism** — one ``(cluster seed, schedule)`` pair produces one
   fault history: the event-log digest is stable across runs and across
   ``PYTHONHASHSEED`` (the latter is exercised end-to-end by
   ``repro.lint --determinism --chaos``).
"""

import pytest

from repro import ClusterConfig, build_cluster, three_city
from repro.chaos import (
    AsymmetricPartition,
    BandwidthCollapse,
    ClockDriftBurst,
    ClockStep,
    FaultSchedule,
    FaultSpec,
    GtmOutage,
    JitterStorm,
    LatencySpike,
    LinkCut,
    Nemesis,
    NodeCrash,
    RegionPartition,
    RegionSplit,
    SyncOutage,
    available_nemeses,
    make_nemesis,
)
from repro.errors import NetworkError
from repro.sim.rand import RandomStreams


def build_db(seed=5, auto_failover=False):
    db = build_cluster(ClusterConfig.globaldb(three_city(), seed=seed,
                                              auto_failover=auto_failover))
    db.run_for(0.2)  # let heartbeats/replication establish the links
    return db


def fault_state(db):
    """Everything an injector may touch, for heal comparison."""
    return {
        "links": {key: (link.blocked, link.extra_delay_ns, link.jitter_ns,
                        link.bandwidth_bps)
                  for key, link in sorted(db.network._links.items())},
        "endpoints": {name: endpoint.up for name, endpoint
                      in sorted(db.network._endpoints.items())},
        "nodes": {node.name: node.failed for node in db.all_nodes()},
        "devices": {region: device.failed
                    for region, device in sorted(db.devices.items())},
        "drift": {node.name: (node.clock.max_drift_ppm,
                              node.clock._drift_ppm)
                  for node in db.all_nodes()},
        "max_drift": {node.name: node.clock.max_drift_ppm
                      for node in db.all_nodes()},
    }


def assert_restored(baseline, current, drift="full"):
    """The healed cluster must match the baseline on every fault surface.

    Links may legitimately *gain* entries (``set_partition`` and probes
    create them lazily), so new keys only need to be fault-free. Drift
    rates are resampled at every sync anchor, so runs that advance sim
    time compare only the ``max_drift_ppm`` bound (``drift="bound"``).
    """
    for key, values in baseline["links"].items():
        assert current["links"][key] == values, f"link {key} not restored"
    for key in set(current["links"]) - set(baseline["links"]):
        blocked, extra_delay_ns, _jitter, _bandwidth = current["links"][key]
        assert not blocked and extra_delay_ns == 0, \
            f"new link {key} left faulted"
    assert current["endpoints"] == baseline["endpoints"]
    assert current["nodes"] == baseline["nodes"]
    assert current["devices"] == baseline["devices"]
    key = "drift" if drift == "full" else "max_drift"
    assert current[key] == baseline[key]


def chaos_rng(seed=5):
    return RandomStreams(seed).stream("chaos:test:0:injector")


INJECTORS = [
    RegionPartition("xian", "dongguan"),
    RegionSplit("xian"),
    AsymmetricPartition("dongguan", "xian"),
    LatencySpike(extra_ms=25.0),
    LatencySpike(extra_ms=25.0, region_a="xian", region_b="langzhong"),
    JitterStorm(jitter_ms=4.0),
    BandwidthCollapse(factor=50.0),
    NodeCrash("replica"),
    NodeCrash("primary"),
    NodeCrash("cn"),
    ClockDriftBurst("langzhong", factor=8.0),
    SyncOutage("xian"),
    GtmOutage(),
]


class TestInjectorsHealExactly:
    @pytest.mark.parametrize("injector", INJECTORS,
                             ids=lambda injector: repr(injector))
    def test_inject_changes_and_heal_restores(self, injector):
        db = build_db()
        baseline = fault_state(db)
        detail = injector.inject(db, chaos_rng())
        assert isinstance(detail, str) and detail
        assert fault_state(db) != baseline, \
            f"{injector!r} injected nothing observable"
        injector.heal(db)
        # No sim time passed, so even the drift rates must match exactly.
        assert_restored(baseline, fault_state(db), drift="full")

    def test_link_cut_blocks_named_pair_only(self):
        db = build_db()
        src, dst = db.cns[0].name, db.primaries[0].name
        injector = LinkCut(src, dst)
        injector.inject(db, chaos_rng())
        assert db.network.link(src, dst).blocked
        assert db.network.link(dst, src).blocked
        injector.heal(db)
        assert not db.network.link(src, dst).blocked
        assert not db.network.link(dst, src).blocked

    def test_region_partition_blocks_cross_traffic(self):
        db = build_db()
        injector = RegionPartition("xian", "dongguan")
        injector.inject(db, chaos_rng())
        xian_cn = next(cn for cn in db.cns if cn.region == "xian")
        dongguan_dn = next(node for node in db.primaries
                           if node.region == "dongguan")

        def probe():
            try:
                yield db.network.request(xian_cn.name, dongguan_dn.name,
                                         ("status",),
                                         timeout_ns=300_000_000)
            except NetworkError:
                return "unreachable"
            return "reachable"

        assert db.env.run(until=db.env.process(probe())) == "unreachable"
        injector.heal(db)
        assert db.env.run(until=db.env.process(probe())) == "reachable"

    def test_node_crash_draws_from_seeded_stream(self):
        db_a, db_b = build_db(), build_db()
        crash_a, crash_b = NodeCrash("replica"), NodeCrash("replica")
        detail_a = crash_a.inject(db_a, chaos_rng())
        detail_b = crash_b.inject(db_b, chaos_rng())
        assert detail_a == detail_b  # same stream, same victim
        crash_a.heal(db_a)
        crash_b.heal(db_b)

    def test_clock_step_is_absorbed_by_the_next_sync(self):
        db = build_db()
        detail = ClockStep(step_us=20.0).inject(db, chaos_rng())
        assert "stepped" in detail
        db.run_for(0.3)  # sync daemons re-anchor; nothing may blow up
        for node in db.all_nodes():
            # Bounded step + re-anchor: every clock is back inside a
            # loose envelope around true time (20us step, 200ppm drift).
            assert abs(node.clock.offset_ns()) < 1_000_000


class TestNemesisDeterminism:
    def test_same_seed_same_digest(self):
        def one_run():
            db = build_cluster(ClusterConfig.globaldb(three_city(), seed=9))
            nemesis = make_nemesis("default", db).start()
            db.env.run(until=2_000_000_000)
            nemesis.quiesce()
            return nemesis.digest(), [event.to_dict()
                                      for event in nemesis.events]

        digest_a, events_a = one_run()
        digest_b, events_b = one_run()
        assert digest_a == digest_b
        assert events_a == events_b
        assert events_a  # the schedule actually fired

    def test_different_seed_different_history(self):
        """The chaos streams derive from the cluster seed: distinct seeds
        pick distinct crash victims / step directions (the digest covers
        every event's detail string)."""
        digests = set()
        for seed in (1, 2, 3):
            db = build_cluster(ClusterConfig.globaldb(three_city(),
                                                      seed=seed))
            nemesis = make_nemesis("crash", db).start()
            db.env.run(until=2_000_000_000)
            nemesis.quiesce()
            digests.add(nemesis.digest())
        assert len(digests) >= 2

    def test_quiesce_heals_everything(self):
        db = build_db()
        baseline = fault_state(db)
        schedule = FaultSchedule("hold", (
            # Windows far longer than the run: still active at quiesce.
            FaultSpec(RegionPartition("xian", "dongguan"),
                      at_s=0.05, duration_s=10.0),
            FaultSpec(SyncOutage("xian"), at_s=0.05, duration_s=10.0),
        ))
        nemesis = Nemesis(db, schedule).start()
        db.run_for(0.2)
        assert nemesis.active_faults == ["region-partition", "sync-outage"]
        assert nemesis.quiesce() == 2
        assert nemesis.active_faults == []
        assert_restored(baseline, fault_state(db), drift="bound")

    @pytest.mark.parametrize("name", available_nemeses())
    def test_preset_runs_clean_and_leaves_no_residue(self, name):
        db = build_db(seed=4, auto_failover=True)
        baseline = fault_state(db)
        nemesis = make_nemesis(name, db).start()
        db.run_for(2.2)
        nemesis.quiesce()
        assert_restored(baseline, fault_state(db), drift="bound")

    def test_unknown_nemesis_raises(self):
        db = build_db()
        with pytest.raises(ValueError, match="unknown nemesis"):
            make_nemesis("nope", db)

    def test_periodic_spec_validation(self):
        with pytest.raises(ValueError, match="every_s"):
            FaultSpec(GtmOutage(), at_s=0.1, repeat=3)
        with pytest.raises(ValueError, match="exceed"):
            FaultSpec(GtmOutage(), at_s=0.1, duration_s=0.5,
                      every_s=0.4, repeat=2)
