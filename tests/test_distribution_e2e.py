"""End-to-end tests for replicated and range-distributed tables."""

from repro import (
    ClusterConfig,
    ColumnDef,
    DistributionSpec,
    TableSchema,
    build_cluster,
    one_region,
)
from repro.storage.snapshot import Snapshot


def build_db():
    return build_cluster(ClusterConfig.globaldb(one_region()))


class TestReplicatedTables:
    def test_create_via_session_distribution_keyword(self):
        db = build_db()
        session = db.session()
        session.create_table("cfg", [("k", "text")], primary_key=["k"],
                             distribution="replicated")
        assert db.shard_map.is_replicated("cfg")

    def test_write_fans_out_to_every_shard(self):
        db = build_db()
        session = db.session()
        session.create_table("cfg", [("k", "text"), ("v", "text")],
                             primary_key=["k"], distribution="replicated")
        session.begin()
        session.insert("cfg", {"k": "mode", "v": "on"})
        commit_ts = session.commit()
        for primary in db.primaries:
            row = primary.engine.read("cfg", ("mode",), Snapshot(commit_ts))
            assert row == {"k": "mode", "v": "on"}

    def test_update_replicated_row_everywhere(self):
        db = build_db()
        session = db.session()
        session.create_table("cfg", [("k", "text"), ("v", "text")],
                             primary_key=["k"], distribution="replicated")
        session.begin()
        session.insert("cfg", {"k": "mode", "v": "on"})
        session.commit()
        session.begin()
        session.update("cfg", ("mode",), {"v": "off"})
        commit_ts = session.commit()
        for primary in db.primaries:
            row = primary.engine.read("cfg", ("mode",), Snapshot(commit_ts))
            assert row["v"] == "off"

    def test_scan_deduplicates_replicated_rows(self):
        db = build_db()
        session = db.session()
        session.create_table("cfg", [("k", "text")], primary_key=["k"],
                             distribution="replicated")
        session.begin()
        session.insert("cfg", {"k": "a"})
        session.insert("cfg", {"k": "b"})
        session.commit()
        session.begin()
        rows = session.scan("cfg")
        session.commit()
        assert sorted(row["k"] for row in rows) == ["a", "b"]

    def test_read_only_scan_uses_single_shard(self):
        db = build_db()
        session = db.session()
        session.create_table("cfg", [("k", "text")], primary_key=["k"],
                             distribution="replicated")
        session.begin()
        session.insert("cfg", {"k": "a"})
        session.commit()
        db.run_for(0.3)
        rows = session.scan_only("cfg")
        assert [row["k"] for row in rows] == ["a"]


class TestRangeDistribution:
    def test_range_table_end_to_end(self):
        db = build_db()
        schema = TableSchema(
            "events", [ColumnDef("ts", "int"), ColumnDef("what", "text")],
            ("ts",), distribution=DistributionSpec("range", "ts"))
        bounds = [(1000, 0), (2000, 1), (None, 2)]
        db.create_table_offline(schema, range_bounds=bounds)
        session = db.session()
        session.begin()
        for ts_value, what in [(50, "early"), (1500, "middle"), (9999, "late")]:
            session.insert("events", {"ts": ts_value, "what": what})
        session.commit()
        # Rows landed on the configured shards.
        assert db.primaries[0].engine.read(
            "events", (50,), Snapshot(10**15)) is not None
        assert db.primaries[1].engine.read(
            "events", (1500,), Snapshot(10**15)) is not None
        assert db.primaries[2].engine.read(
            "events", (9999,), Snapshot(10**15)) is not None
        # And point reads route correctly.
        session.begin()
        assert session.read("events", (1500,))["what"] == "middle"
        session.commit()

    def test_range_scan_covers_all_shards(self):
        db = build_db()
        schema = TableSchema(
            "events", [ColumnDef("ts", "int")], ("ts",),
            distribution=DistributionSpec("range", "ts"))
        db.create_table_offline(schema,
                                range_bounds=[(100, 0), (200, 1), (None, 2)])
        session = db.session()
        session.begin()
        for ts_value in (10, 150, 500):
            session.insert("events", {"ts": ts_value})
        session.commit()
        session.begin()
        rows = session.scan("events")
        session.commit()
        assert sorted(row["ts"] for row in rows) == [10, 150, 500]
