"""Regression test for the paper's Listing 1 anomaly.

The scenario: during a GTM -> GClock migration, a transaction that began
in GTM mode reaches commit while the GTM server is in DUAL mode. A node
already in DUAL has pushed a large clock-derived timestamp into the server
(from a *fast* clock), so the GTM transaction receives a large DUAL
timestamp. A transaction starting right after on a node that has already
cut over to GClock — with a *slow* clock — takes a pure clock snapshot. If
the GTM transaction committed without waiting, that snapshot can be
smaller than its commit timestamp and miss the committed update.

The fix (§III-A): GTM-mode transactions committing while the server is in
DUAL wait out twice the maximum error bound observed during the
transition — exactly the width of the two-sided clock-skew window. These
tests build the interleaving with controlled skew and show (a) the wait
restores visibility and (b) without the wait the anomaly genuinely occurs.
"""

from repro.clocks import (
    ClockSyncConfig,
    ClockSyncDaemon,
    GClockSource,
    GlobalTimeDevice,
    PhysicalClock,
)
from repro.sim import Environment, ms, us
from repro.sim.network import Network
from repro.sim.rand import RandomStreams
from repro.txn import GTMServer, TimestampProvider, TxnMode

#: Controlled skew: node3's clock runs fast, node2's slow, both inside the
#: error bound (60 us sync RTT + drift).
SKEW = us(50)


def build_listing1_rig():
    env = Environment()
    streams = RandomStreams(11)
    network = Network(env)
    gtm = GTMServer(env, network, "gtms", "east", service_time_ns=0)
    device = GlobalTimeDevice(env, "east")
    providers = []
    clocks = []
    for index in range(3):
        name = f"node{index + 1}"
        clock = PhysicalClock(env, name, streams.stream(f"c{index}"),
                              max_drift_ppm=0.0)
        sync = ClockSyncDaemon(env, clock, device, ClockSyncConfig(), name)
        gclock = GClockSource(env, clock, sync)
        network.add_endpoint(name, "east")
        network.set_link(name, "gtms", latency_ns=us(1))
        providers.append(TimestampProvider(env, network, name, gclock,
                                           "gtms", mode=TxnMode.GTM))
        clocks.append(clock)
    env.run(until=ms(5))
    # Freeze syncing and install the skew: clocks now hold their offsets.
    device.fail()
    clocks[1].step(-SKEW)  # node2: slow
    clocks[2].step(+SKEW)  # node3: fast
    return env, network, gtm, providers


def run_interleaving(env, network, gtm, providers, honor_wait: bool):
    node1, node2, node3 = providers
    log = {}

    def scenario():
        gtm.set_mode(TxnMode.DUAL)
        # Node1 begins Trx1 in GTM mode before transitioning.
        _read_ts, trx1_mode = yield from node1.begin()
        assert trx1_mode is TxnMode.GTM
        # Node2 and Node3 transition to DUAL; Node2 continues to GClock.
        yield from node2.set_mode(TxnMode.DUAL)
        yield from node3.set_mode(TxnMode.DUAL)
        yield from node2.set_mode(TxnMode.GCLOCK)
        # Node3 (fast clock) pushes a large GClock timestamp into the GTMS
        # (Listing 1's "send large GClock timestamp ts3": a DUAL begin
        # reports the clock upper bound without any commit-wait).
        ts3, _mode3 = yield from node3.begin()
        log["ts3"] = ts3
        # Trx1 commits via the GTM server.
        if honor_wait:
            started = env.now
            ts1 = yield from node1.commit_ts(TxnMode.GTM)
            log["waited"] = env.now - started
        else:
            reply = yield network.request(node1.node_name, "gtms",
                                          ("commit_gtm",))
            _ok, ts1, mandated = reply
            log["mandated_wait"] = mandated  # deliberately not honoured
        log["ts1"] = ts1
        # Trx2 starts immediately afterwards on GClock-mode node2 (slow
        # clock): a pure clock snapshot, no server contact.
        read_ts2, mode2 = yield from node2.begin()
        assert mode2 is TxnMode.GCLOCK
        log["ts2"] = read_ts2

    env.run(until=env.process(scenario()))
    return log


def test_wait_restores_visibility():
    env, network, gtm, providers = build_listing1_rig()
    log = run_interleaving(env, network, gtm, providers, honor_wait=True)
    assert log["ts1"] > log["ts3"]
    assert log["waited"] >= 2 * gtm.max_err_seen  # the Listing 1 rule
    # Visibility holds: the later transaction's snapshot covers Trx1.
    assert log["ts2"] >= log["ts1"]


def test_without_wait_the_anomaly_occurs():
    env, network, gtm, providers = build_listing1_rig()
    log = run_interleaving(env, network, gtm, providers, honor_wait=False)
    assert log["mandated_wait"] > 0       # the server did mandate the wait
    # Skipping it produces Listing 1's violation: Trx2 starts after Trx1
    # committed (in true time) yet gets a smaller snapshot and cannot see
    # Trx1's update.
    assert log["ts2"] < log["ts1"]
