"""simsan tests: interprocedural rules SIM107–SIM110 and the runtime
deadlock/mutation sanitizer."""

import json
import subprocess
import sys

import pytest

from repro.errors import WriteConflict
from repro.lint import lint_paths, lint_source
from repro.san import Sanitizer, maybe_install
from repro.san.fingerprint import canonical, fingerprint
from repro.san.waitfor import WaitForGraph
from repro.sim import Environment, ms
from repro.sim.network import Network
from repro.storage.locks import LockTable


def rules_for(source: str, path: str = "fixture.py") -> list[str]:
    return [finding.rule for finding in lint_source(source, path=path)]


# ----------------------------------------------------------------------
# SIM107 — inconsistent lock acquisition order
# ----------------------------------------------------------------------
class TestSim107:
    def test_abba_order_flagged(self):
        source = """
def path_a(locks, txid):
    yield locks.acquire(txid, "warehouse", 1)
    yield locks.acquire(txid, "district", 2)

def path_b(locks, txid):
    yield locks.acquire(txid, "district", 2)
    yield locks.acquire(txid, "warehouse", 1)
"""
        findings = lint_source(source, path="f107.py")
        assert [f.rule for f in findings] == ["SIM107"]
        # The message names both orders so the cycle is actionable.
        assert "warehouse" in findings[0].message
        assert "district" in findings[0].message

    def test_order_built_across_call_flagged(self):
        source = """
def tail(locks, txid):
    yield locks.acquire(txid, "district", 2)

def path_a(locks, txid):
    yield locks.acquire(txid, "warehouse", 1)
    yield from tail(locks, txid)

def path_b(locks, txid):
    yield locks.acquire(txid, "district", 2)
    yield locks.acquire(txid, "warehouse", 1)
"""
        assert "SIM107" in rules_for(source)

    def test_consistent_order_clean(self):
        source = """
def path_a(locks, txid):
    yield locks.acquire(txid, "warehouse", 1)
    yield locks.acquire(txid, "district", 2)

def path_b(locks, txid):
    yield locks.acquire(txid, "warehouse", 9)
    yield locks.acquire(txid, "district", 8)
"""
        assert rules_for(source) == []

    def test_release_between_breaks_edge(self):
        source = """
def path_a(locks, txid):
    yield locks.acquire(txid, "warehouse", 1)
    locks.release_all(txid)
    yield locks.acquire(txid, "district", 2)

def path_b(locks, txid):
    yield locks.acquire(txid, "district", 2)
    locks.release_all(txid)
    yield locks.acquire(txid, "warehouse", 1)
"""
        assert rules_for(source) == []

    def test_pragma_suppresses(self):
        # The finding anchors at the witness acquire of the cycle's
        # lexicographically-smallest edge — pragma that line.
        source = """
def path_a(locks, txid):
    yield locks.acquire(txid, "warehouse", 1)
    yield locks.acquire(txid, "district", 2)

def path_b(locks, txid):
    yield locks.acquire(txid, "district", 2)
    yield locks.acquire(txid, "warehouse", 1)  # simlint: ignore[SIM107]
"""
        assert rules_for(source) == []


# ----------------------------------------------------------------------
# SIM108 — mutation after send
# ----------------------------------------------------------------------
class TestSim108:
    def test_direct_payload_mutation_flagged(self):
        source = """
def ship(network, dst, rows):
    network.send("cn", dst, payload=("redo", rows), size_bytes=10)
    rows.append("late")
"""
        assert rules_for(source) == ["SIM108"]

    def test_alias_through_local_tuple_flagged(self):
        source = """
def ship(network, dst, rows):
    payload = ("redo", rows)
    network.send("cn", dst, payload=payload, size_bytes=10)
    rows.append("late")
"""
        assert rules_for(source) == ["SIM108"]

    def test_mutation_in_callee_flagged(self):
        source = """
def scrub(batch):
    batch.clear()

def ship(network, dst, rows):
    network.send("cn", dst, payload=("redo", rows), size_bytes=10)
    scrub(rows)
"""
        assert rules_for(source) == ["SIM108"]

    def test_copy_before_send_clean(self):
        source = """
def ship(network, dst, rows):
    network.send("cn", dst, payload=("redo", list(rows)), size_bytes=10)
    rows.append("late")
"""
        assert rules_for(source) == []

    def test_rebind_kills_alias(self):
        source = """
def ship(network, dst, rows):
    network.send("cn", dst, payload=("redo", rows), size_bytes=10)
    rows = []
    rows.append("fresh-object-only")
"""
        assert rules_for(source) == []

    def test_swap_before_send_idiom_clean(self):
        # The shipper's idiom: detach the pending list, then ship it.
        source = """
def flush(self, network, dst):
    records = self.pending
    self.pending = []
    network.send("dn", dst, payload=("redo_batch", records), size_bytes=10)
"""
        assert rules_for(source) == []

    def test_pragma_suppresses(self):
        source = """
def ship(network, dst, rows):
    network.send("cn", dst, payload=("redo", rows), size_bytes=10)
    rows.append("late")  # simlint: ignore[SIM108]
"""
        assert rules_for(source) == []


# ----------------------------------------------------------------------
# SIM109 — yield while holding a lock outside the commit path
# ----------------------------------------------------------------------
class TestSim109:
    def test_yield_while_locked_flagged(self):
        source = """
def handle_update(env, locks, txid):
    yield locks.acquire(txid, "warehouse", 1)
    yield env.timeout(5)
"""
        findings = lint_source(source, path="f109.py")
        assert [f.rule for f in findings] == ["SIM109"]
        assert "warehouse" in findings[0].message

    def test_yield_in_callee_while_locked_flagged(self):
        source = """
def slow_wait(env):
    yield env.timeout(5)

def handle_update(env, locks, txid):
    yield locks.acquire(txid, "warehouse", 1)
    yield from slow_wait(env)
"""
        assert "SIM109" in rules_for(source)

    def test_commit_path_exempt(self):
        source = """
def commit_phase(env, locks, txid):
    yield locks.acquire(txid, "warehouse", 1)
    yield env.timeout(5)
"""
        assert rules_for(source) == []

    def test_release_before_yield_clean(self):
        source = """
def handle(env, locks, txid):
    yield locks.acquire(txid, "warehouse", 1)
    locks.release_all(txid)
    yield env.timeout(5)
"""
        assert rules_for(source) == []

    def test_pragma_suppresses(self):
        source = """
def handle_update(env, locks, txid):
    yield locks.acquire(txid, "warehouse", 1)
    yield env.timeout(5)  # simlint: ignore[SIM109]
"""
        assert rules_for(source) == []


# ----------------------------------------------------------------------
# SIM110 — shared mutable module-level state
# ----------------------------------------------------------------------
class TestSim110:
    POSITIVE = """
PENDING = []

def g_producer(env):
    while True:
        PENDING.append(1)
        yield env.timeout(1)

def g_consumer(env):
    while True:
        if PENDING:
            PENDING.pop(0)
        yield env.timeout(1)
"""

    def test_two_processes_mutating_flagged(self):
        findings = lint_source(self.POSITIVE, path="f110.py")
        assert [f.rule for f in findings] == ["SIM110"]
        assert "PENDING" in findings[0].message

    def test_single_process_clean(self):
        source = """
PENDING = []

def g_only(env):
    while True:
        PENDING.append(1)
        yield env.timeout(1)
"""
        assert rules_for(source) == []

    def test_read_only_sharing_clean(self):
        source = """
LIMITS = {"max": 10}

def g_a(env):
    while True:
        yield env.timeout(LIMITS["max"])

def g_b(env):
    while True:
        yield env.timeout(LIMITS["max"])
"""
        assert rules_for(source) == []

    def test_local_shadow_clean(self):
        source = """
PENDING = []

def g_a(env):
    PENDING = []
    while True:
        PENDING.append(1)
        yield env.timeout(1)

def g_b(env):
    PENDING = []
    while True:
        PENDING.append(1)
        yield env.timeout(1)
"""
        assert rules_for(source) == []

    def test_pragma_suppresses(self):
        source = """
PENDING = []  # simlint: ignore[SIM110]

def g_producer(env):
    while True:
        PENDING.append(1)
        yield env.timeout(1)

def g_consumer(env):
    while True:
        if PENDING:
            PENDING.pop(0)
        yield env.timeout(1)
"""
        assert rules_for(source) == []


# ----------------------------------------------------------------------
# Runtime: wait-for graph deadlock detection
# ----------------------------------------------------------------------
class TestRuntimeDeadlock:
    def run_abba(self, sanitize: bool):
        env = Environment()
        if sanitize:
            Sanitizer(env).install()
        locks = LockTable(env)
        outcome = {}

        def txn(me, delay, first, second):
            yield locks.acquire(me, first, (1,))
            yield env.timeout(delay)
            try:
                yield locks.acquire(me, second, (1,))
                outcome[me] = "granted"
            except WriteConflict as exc:
                outcome[me] = str(exc)
            locks.release_all(me)

        env.process(txn(1, 10, "warehouse", "district"))
        env.process(txn(2, 20, "district", "warehouse"))
        env.run()
        return env, locks, outcome

    def test_cycle_detected_at_wait_time_names_members(self):
        env, locks, outcome = self.run_abba(sanitize=True)
        assert outcome[1] == "granted"
        message = outcome[2]
        # The victim's WriteConflict names the full cycle: both txids and
        # both lock keys.
        assert "deadlock detected" in message
        assert "txn 1" in message and "txn 2" in message
        assert "warehouse" in message and "district" in message
        assert locks.deadlock_count == 1
        assert locks.timeout_count == 0
        # Detection happened at wait time (t=20ns), not at the 1s timeout.
        report = env.san.report
        assert report.count("deadlock-cycle") == 1
        assert report.findings[0].time_ns == 20

    def test_without_sanitizer_timeout_classified_as_deadlock(self):
        env, locks, outcome = self.run_abba(sanitize=False)
        aborted = [message for message in outcome.values()
                   if "timeout" in message]
        assert len(aborted) == 1
        assert locks.deadlock_count == 1

    def test_plain_timeout_not_counted_as_deadlock(self):
        env = Environment()
        locks = LockTable(env, default_timeout_ns=ms(20))
        locks.acquire(1, "t", (1,))  # holder never releases

        def waiter():
            with pytest.raises(WriteConflict):
                yield locks.acquire(2, "t", (1,))

        env.process(waiter())
        env.run()
        assert locks.timeout_count == 1
        assert locks.deadlock_count == 0

    def test_three_party_cycle(self):
        env = Environment()
        san = Sanitizer(env).install()
        locks = LockTable(env)
        outcome = {}

        def txn(me, delay, first, second):
            yield locks.acquire(me, first, (1,))
            yield env.timeout(delay)
            try:
                yield locks.acquire(me, second, (1,))
                outcome[me] = "granted"
            except WriteConflict as exc:
                outcome[me] = str(exc)
            locks.release_all(me)

        env.process(txn(1, 10, "a", "b"))
        env.process(txn(2, 10, "b", "c"))
        env.process(txn(3, 20, "c", "a"))
        env.run()
        assert "deadlock detected" in outcome[3]
        for member in ("txn 1", "txn 2", "txn 3"):
            assert member in outcome[3]
        finding = san.report.findings[0]
        details = dict(finding.details)
        assert details["members"] == "3,1,2"
        assert details["size"] == "3"

    def test_handoff_updates_graph(self):
        # After a FIFO handoff the graph must track the new holder —
        # otherwise later cycles are attributed to the old one.
        env = Environment()
        san = Sanitizer(env).install()
        locks = LockTable(env)

        def first():
            yield locks.acquire(1, "t", (1,))
            yield env.timeout(10)
            locks.release_all(1)

        def second():
            yield env.timeout(1)
            yield locks.acquire(2, "t", (1,))
            yield env.timeout(10)
            locks.release_all(2)

        env.process(first())
        env.process(second())
        env.run()
        assert san.waitfor.holders == {}
        assert san.waitfor.waits == {}

    def test_waitfor_cycle_path_shape(self):
        graph = WaitForGraph()
        graph.on_granted(0, ("a", (1,)), 10)
        graph.on_granted(0, ("b", (1,)), 20)
        assert graph.on_wait(0, ("b", (1,)), 10) is None
        cycle = graph.on_wait(0, ("a", (1,)), 20)
        assert cycle == [(20, (0, ("a", (1,)))), (10, (0, ("b", (1,))))]
        # The rejected wait was not recorded.
        assert 20 not in graph.waits


# ----------------------------------------------------------------------
# Runtime: payload fingerprinting
# ----------------------------------------------------------------------
class TestRuntimeMutation:
    def build_net(self):
        env = Environment()
        san = Sanitizer(env).install()
        net = Network(env)
        net.add_endpoint("a", "r1", handler=lambda message: None)
        net.add_endpoint("b", "r1", handler=lambda message: None)
        net.set_link("a", "b", latency_ns=1000)
        return env, san, net

    def test_mutation_after_send_flagged_with_attribution(self):
        env, san, net = self.build_net()
        rows = [("k1", "v1")]
        net.send("a", "b", payload=("redo_batch", "a", rows), size_bytes=64)
        rows.append(("k2", "v2"))  # mutate while in flight
        env.run()
        assert san.report.count("mutation-after-send") == 1
        finding = san.report.findings[0]
        details = dict(finding.details)
        assert details["src"] == "a" and details["dst"] == "b"
        assert details["payload"] == "redo_batch"
        assert "redo_batch" in finding.message

    def test_unmutated_payload_clean(self):
        env, san, net = self.build_net()
        rows = [("k1", "v1")]
        net.send("a", "b", payload=("redo_batch", "a", rows), size_bytes=64)
        env.run()
        rows.append(("k2", "v2"))  # after delivery: fine
        assert san.report.findings == []
        assert san.messages_checked == 1

    def test_rpc_reply_event_state_is_opaque(self):
        # RPC replies carry the caller's pending Event, whose triggered
        # state flips in flight by design — must not be flagged.
        env, san, net = self.build_net()
        replies = []

        def handler(message):
            message.payload.reply("pong")

        net.set_handler("b", handler)

        def caller():
            value = yield net.request("a", "b", body=("ping",))
            replies.append(value)

        env.process(caller())
        env.run()
        assert replies == ["pong"]
        assert san.report.findings == []

    def test_same_tick_coalesced_batch_checked(self):
        # Two sends in the same tick coalesce into one delivery batch;
        # both payloads must still be verified.
        env, san, net = self.build_net()
        rows = [1]
        net.send("a", "b", payload=("batch", rows), size_bytes=64)
        net.send("a", "b", payload=("batch", [2]), size_bytes=64)
        rows.append(99)
        env.run()
        assert san.messages_checked == 2
        assert san.report.count("mutation-after-send") == 1


class TestFingerprint:
    def test_dict_order_independent(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_set_order_independent(self):
        assert fingerprint({3, 1, 2}) == fingerprint({2, 3, 1})

    def test_value_change_changes_fingerprint(self):
        assert fingerprint([1, 2]) != fingerprint([1, 3])

    def test_type_distinguished(self):
        assert fingerprint((1, 2)) != fingerprint([1, 2])
        assert fingerprint("1") != fingerprint(1)

    def test_depth_cap_consistent(self):
        nested: list = []
        tail = nested
        for _ in range(50):
            inner: list = []
            tail.append(inner)
            tail = inner
        assert fingerprint(nested) == fingerprint(nested)
        assert "<deep>" in canonical(nested)

    def test_dataclass_fields_covered(self):
        # Slotted redo records are what actually ships on the wire; a row
        # change must change the fingerprint.
        from repro.storage.redo import RedoInsert
        record_a = RedoInsert(1, table="t", key=(1,), row={"c": "x"})
        record_b = RedoInsert(1, table="t", key=(1,), row={"c": "y"})
        assert fingerprint(record_a) != fingerprint(record_b)


# ----------------------------------------------------------------------
# Install gating & CLI
# ----------------------------------------------------------------------
class TestInstall:
    def test_maybe_install_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAN", raising=False)
        env = Environment()
        assert maybe_install(env) is None
        assert env.san is None

    def test_maybe_install_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAN", "1")
        env = Environment()
        san = maybe_install(env)
        assert isinstance(san, Sanitizer)
        assert env.san is san
        assert maybe_install(env) is san  # idempotent

    def test_explicit_zero_is_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAN", "0")
        env = Environment()
        assert maybe_install(env) is None


class TestSanCli:
    def test_exit_1_on_each_fixture(self, tmp_path):
        fixtures = {
            "SIM107": """
def path_a(locks, txid):
    yield locks.acquire(txid, "warehouse", 1)
    yield locks.acquire(txid, "district", 2)

def path_b(locks, txid):
    yield locks.acquire(txid, "district", 2)
    yield locks.acquire(txid, "warehouse", 1)
""",
            "SIM108": """
def ship(network, dst, rows):
    network.send("cn", dst, payload=("redo", rows), size_bytes=10)
    rows.append("late")
""",
            "SIM109": """
def handle_update(env, locks, txid):
    yield locks.acquire(txid, "warehouse", 1)
    yield env.timeout(5)
""",
            "SIM110": TestSim110.POSITIVE,
        }
        for code, source in fixtures.items():
            target = tmp_path / f"fixture_{code.lower()}.py"
            target.write_text(source, encoding="utf-8")
            proc = subprocess.run(
                [sys.executable, "-m", "repro.lint", "san", "--no-smoke",
                 str(target)],
                capture_output=True, text=True)
            assert proc.returncode == 1, (code, proc.stdout, proc.stderr)
            assert code in proc.stdout
            target.unlink()

    def test_json_artifact_written(self, tmp_path):
        fixture = tmp_path / "fixture.py"
        fixture.write_text("""
def ship(network, dst, rows):
    network.send("cn", dst, payload=("redo", rows), size_bytes=10)
    rows.append("late")
""", encoding="utf-8")
        artifact = tmp_path / "findings.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "san", "--no-smoke",
             "--json", str(artifact), str(fixture)],
            capture_output=True, text=True)
        assert proc.returncode == 1
        data = json.loads(artifact.read_text(encoding="utf-8"))
        assert data["ok"] is False
        assert [finding["rule"] for finding in data["static"]] == ["SIM108"]


class TestSanitizedSmoke:
    def test_sanitized_smoke_clean_and_digest_unchanged(self):
        from repro.lint.determinism import smoke_run

        plain = smoke_run(duration_s=0.05, warmup_s=0.02)
        sanitized = smoke_run(duration_s=0.05, warmup_s=0.02, sanitize=True)
        assert sanitized["san_findings"] == []
        assert sanitized["san_messages_checked"] > 0
        # A clean sanitized run is bit-identical to the plain run: the
        # sanitizer observes, it never schedules.
        assert sanitized["digest"] == plain["digest"]


class TestRepoIsSanClean:
    def test_interprocedural_rules_clean_on_src(self):
        import os

        import repro

        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        findings = lint_paths([src_dir])
        assert findings == []
