"""Tests for the Session facade, GlobalDB helpers, and the bench harness."""

import pytest

from repro import (
    ClusterConfig,
    ColumnDef,
    DistributionSpec,
    TableSchema,
    TransactionAborted,
    build_cluster,
    one_region,
)
from repro.bench.harness import ExperimentTable, Scale
from repro.errors import SimulationError


def quick_db(**overrides):
    return build_cluster(ClusterConfig.globaldb(one_region(), **overrides))


class TestSession:
    def test_begin_twice_rejected(self):
        db = quick_db()
        session = db.session()
        session.create_table("t", [("k", "int")], primary_key=["k"])
        session.begin()
        with pytest.raises(TransactionAborted):
            session.begin()
        session.rollback()

    def test_ops_without_txn_rejected(self):
        db = quick_db()
        session = db.session()
        session.create_table("t", [("k", "int")], primary_key=["k"])
        with pytest.raises(TransactionAborted):
            session.insert("t", {"k": 1})
        with pytest.raises(TransactionAborted):
            session.commit()

    def test_execute_txn_auto_commit(self):
        db = quick_db()
        session = db.session()
        session.create_table("t", [("k", "int"), ("v", "int")],
                             primary_key=["k"])

        def body(txn):
            yield from txn.insert("t", {"k": 1, "v": 10})
            row = yield from txn.read("t", (1,))
            yield from txn.update("t", (1,), {"v": row["v"] + 5})
            return "done"

        assert session.execute_txn(body) == "done"
        session.begin()
        assert session.read("t", (1,))["v"] == 15
        session.commit()

    def test_execute_txn_auto_abort_on_error(self):
        db = quick_db()
        session = db.session()
        session.create_table("t", [("k", "int")], primary_key=["k"])

        def body(txn):
            yield from txn.insert("t", {"k": 9})
            raise RuntimeError("app bug")

        with pytest.raises(RuntimeError):
            session.execute_txn(body)
        session.begin()
        assert session.read("t", (9,)) is None
        session.commit()

    def test_read_your_writes_through_sql(self):
        db = quick_db()
        session = db.session()
        session.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t (k, v) VALUES (1, 1)")
        # Immediately visible to the same session, regardless of RCP lag.
        assert session.execute("SELECT v FROM t WHERE k = 1") == [{"v": 1}]

    def test_sessions_round_robin_within_region(self):
        db = build_cluster(ClusterConfig.globaldb(one_region(),
                                                  cns_per_region=2))
        region = db.cns[0].region
        first = db.session(region=region)
        second = db.session(region=region)
        assert first.cn is not second.cn

    def test_unknown_region_rejected(self):
        db = quick_db()
        with pytest.raises(SimulationError):
            db.session(region="atlantis")


class TestGlobalDbFacade:
    def test_bulk_load_replicated_table(self):
        db = quick_db()
        schema = TableSchema("cfg", [ColumnDef("k", "int")], ("k",),
                             distribution=DistributionSpec("replicated"))
        db.create_table_offline(schema)
        loaded = db.bulk_load("cfg", [{"k": i} for i in range(5)])
        assert loaded == 5
        # Every shard primary holds every row.
        for primary in db.primaries:
            assert len(primary.engine.table("cfg")) == 5

    def test_bulk_load_hash_table_partitions(self):
        db = quick_db()
        db.create_table_offline(TableSchema(
            "t", [ColumnDef("k", "int")], ("k",)))
        loaded = db.bulk_load("t", [{"k": i} for i in range(60)])
        assert loaded == 60
        per_shard = [len(primary.engine.table("t")) for primary in db.primaries]
        assert sum(per_shard) == 60
        assert max(per_shard) < 60  # actually spread

    def test_node_lookup(self):
        db = quick_db()
        assert db.node("dn0") is db.primaries[0]
        with pytest.raises(SimulationError):
            db.node("nothere")

    def test_total_counters(self):
        db = quick_db()
        session = db.session()
        session.create_table("t", [("k", "int")], primary_key=["k"])
        session.begin()
        session.insert("t", {"k": 1})
        session.commit()
        assert db.total_commits() >= 1
        assert db.total_aborts() == 0

    def test_all_nodes_enumeration(self):
        db = quick_db()
        names = {node.name for node in db.all_nodes()}
        assert len(names) == 3 + 6 + 12  # CNs + primaries + replicas


class TestBenchHarness:
    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert Scale.from_env().name == "full"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        assert Scale.from_env().name == "quick"
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert Scale.from_env().name == "quick"

    def test_table_render_and_access(self):
        table = ExperimentTable(
            experiment="Demo", paper_claim="x beats y",
            columns=["name", "value", "ratio"])
        table.add_row("alpha", 1234.5, 0.913)
        table.add_row("beta", 2.25, 12.0)
        table.note("a note")
        text = table.render()
        assert "Demo" in text and "x beats y" in text
        assert "alpha" in text and "1234" in text
        assert "note: a note" in text
        assert table.column("name") == ["alpha", "beta"]
        assert table.cell(0, "ratio") == 0.913

    def test_table_round_trips_to_dict(self):
        table = ExperimentTable(experiment="D", paper_claim="c",
                                columns=["a"])
        table.add_row(1)
        data = table.to_dict()
        assert data["rows"] == [[1]]
        assert data["columns"] == ["a"]


class TestSingleShardBypass:
    def test_point_read_uses_dn_last_commit_ts(self):
        """§III: single-shard reads bypass timestamp acquisition — the DN
        answers at its own last-committed timestamp with no GTM RPC and no
        invocation wait."""
        db = build_cluster(ClusterConfig.baseline(one_region()))
        session = db.session()
        session.create_table("t", [("k", "int"), ("v", "int")],
                             primary_key=["k"])
        session.begin()
        session.insert("t", {"k": 1, "v": 42})
        session.commit()
        gtm_begins_before = db.gtm.begin_requests
        # ror is disabled in baseline, so read_only takes _baseline_read,
        # which DOES contact the GTM. The bypass is the ("read", None, ...)
        # path used by ROR primary fallbacks; exercise it directly:
        cn = db.cns[0]

        def bypass_read():
            shard = db.shard_map.shard_for_key("t", (1,))
            reply = yield db.network.request(
                cn.name, cn.primary_of_shard[shard],
                ("read", None, None, "t", (1,)))
            return reply

        row, read_ts = db.env.run(until=db.env.process(bypass_read()))
        assert row["v"] == 42
        assert read_ts > 0  # the DN substituted its last commit timestamp
        assert db.gtm.begin_requests == gtm_begins_before
