"""The paper's Fig. 4 RCP walkthrough, replayed literally.

Three replicated shards with different replay progress:

- Replica 1 has applied commits up to ts4 (with Trx1's commit record
  arriving *after* Trx2's despite ts1 < ts2 — the out-of-order write the
  paper calls out);
- Replica 2 has applied up to ts5;
- Replica 3 has applied up to ts3.

RCP = min(ts4, ts5, ts3) = ts3: Trx1, Trx2, Trx3 are visible; Trx4 (whose
redo may not have arrived on every shard) and Trx5 (which might depend on
Trx4) are not.
"""

from repro.ror import compute_rcp
from repro.replication.replica import ReplicaStore
from repro.sim import Environment
from repro.storage import Snapshot
from repro.storage.catalog import ColumnDef, TableSchema
from repro.storage.redo import RedoCommit, RedoInsert, RedoPendingCommit

TS = {name: (index + 1) * 100 for index, name in
      enumerate(["ts1", "ts2", "ts3", "ts4", "ts5"])}


def make_replica(env, name):
    store = ReplicaStore(env, name)
    schema = TableSchema("t", [ColumnDef("k", "int"), ColumnDef("v", "text")],
                         ("k",))
    store.catalog.create_table(schema, ddl_ts=0)
    from repro.storage.heap import HeapTable
    store._tables["t"] = HeapTable("t")
    return store


def apply_txn(store, lsn, txid, key, commit_ts=None, pending_only=False):
    """Apply one transaction's records: insert, pending, [commit]."""
    insert = RedoInsert(txid=txid, table="t", key=(key,),
                        row={"k": key, "v": f"trx{txid}"})
    insert.lsn = lsn
    store.apply(insert)
    pending = RedoPendingCommit(txid=txid)
    pending.lsn = lsn + 1
    store.apply(pending)
    if pending_only:
        return lsn + 2
    commit = RedoCommit(txid=txid, commit_ts=commit_ts)
    commit.lsn = lsn + 2
    store.apply(commit)
    return lsn + 3


def test_fig4_rcp_and_visibility():
    env = Environment()
    replica1 = make_replica(env, "r1")
    replica2 = make_replica(env, "r2")
    replica3 = make_replica(env, "r3")

    # Replica 1: Trx2's commit record lands BEFORE Trx1's, although
    # ts1 < ts2 (out-of-order commit-record writes, Fig. 4's subtlety).
    lsn = 1
    lsn = apply_txn(replica1, lsn, txid=2, key=2, commit_ts=TS["ts2"])
    lsn = apply_txn(replica1, lsn, txid=1, key=1, commit_ts=TS["ts1"])
    lsn = apply_txn(replica1, lsn, txid=4, key=4, commit_ts=TS["ts4"])

    # Replica 2: everything through ts5.
    lsn = 1
    for txid, key in [(1, 1), (2, 2), (3, 3), (5, 5)]:
        lsn = apply_txn(replica2, lsn, txid=txid, key=key,
                        commit_ts=TS[f"ts{txid}"])

    # Replica 3: through ts3 only; Trx4's redo has arrived but its commit
    # has not (it is pending/in doubt here).
    lsn = 1
    for txid, key in [(1, 1), (2, 2), (3, 3)]:
        lsn = apply_txn(replica3, lsn, txid=txid, key=key,
                        commit_ts=TS[f"ts{txid}"])
    apply_txn(replica3, lsn, txid=4, key=4, pending_only=True)

    # --- the RCP calculation of Fig. 4 ---------------------------------
    maxima = {"r1": replica1.max_commit_ts, "r2": replica2.max_commit_ts,
              "r3": replica3.max_commit_ts}
    assert maxima == {"r1": TS["ts4"], "r2": TS["ts5"], "r3": TS["ts3"]}
    rcp = compute_rcp(maxima)
    assert rcp == TS["ts3"]

    # --- visibility at the RCP ------------------------------------------
    snapshot = Snapshot(rcp)
    # Trx1, Trx2, Trx3 visible wherever their data lives.
    assert replica2.read("t", (1,), snapshot) is not None
    assert replica2.read("t", (2,), snapshot) is not None
    assert replica2.read("t", (3,), snapshot) is not None
    # Trx1 visible on Replica 1 despite its late commit record.
    assert replica1.read("t", (1,), snapshot) is not None
    # Trx4 (ts4 > rcp) and Trx5 (ts5 > rcp) invisible at the RCP.
    assert replica1.read("t", (4,), snapshot) is None
    assert replica2.read("t", (5,), snapshot) is None


def test_fig4_pending_holdback_blocks_in_doubt_reads():
    """On Replica 3, Trx4 is pending: a reader touching its tuple blocks
    until the outcome record is replayed, then sees the right answer."""
    env = Environment()
    replica3 = make_replica(env, "r3")
    lsn = 1
    for txid, key in [(1, 1), (2, 2), (3, 3)]:
        lsn = apply_txn(replica3, lsn, txid=txid, key=key,
                        commit_ts=TS[f"ts{txid}"])
    next_lsn = apply_txn(replica3, lsn, txid=4, key=4, pending_only=True)
    assert replica3.unresolved_count() == 1

    outcomes = []

    def reader():
        row = yield from replica3.read_waiting("t", (4,), Snapshot(TS["ts5"]))
        outcomes.append(row)

    env.process(reader())
    env.run(until=1000)
    assert outcomes == []  # blocked on the in-doubt transaction

    commit = RedoCommit(txid=4, commit_ts=TS["ts4"])
    commit.lsn = next_lsn
    replica3.apply(commit)
    env.run(until=2000)
    assert outcomes == [{"k": 4, "v": "trx4"}]
