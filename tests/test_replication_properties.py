"""Property-based replication tests: a replica that has consumed the whole
redo stream is indistinguishable from its primary."""

from hypothesis import given, settings, strategies as st

from repro.replication.replayer import Replayer
from repro.replication.replica import ReplicaStore
from repro.sim import Environment
from repro.storage import ColumnDef, Snapshot, StorageEngine, TableSchema

KEYS = list(range(1, 5))

operation_strategy = st.lists(
    st.tuples(st.sampled_from(KEYS),
              st.sampled_from(["insert", "update", "delete"]),
              st.sampled_from(["commit", "abort", "prepare_commit",
                               "prepare_abort"])),
    min_size=1, max_size=25)


def run_history(operations):
    """Drive a primary through a random history while a replica replays
    its full redo stream; return (engine, store, max_ts)."""
    env = Environment()
    engine = StorageEngine(env, "primary")
    schema = TableSchema(
        "t", [ColumnDef("k", "int"), ColumnDef("v", "int")], ("k",))
    engine.create_table(schema)
    store = ReplicaStore(env, "replica")
    replayer = Replayer(env, store, apply_ns_per_record=0)
    engine.wal.subscribe(lambda record: replayer.enqueue([record]))
    # Feed the DDL that predates the subscription.
    replayer.enqueue(engine.wal.records_from(0))

    ts = 0
    txid = 0
    for key, op, outcome in operations:
        txid += 1
        ts += 10
        engine.begin(txid)
        changed = False
        if op == "insert":
            snapshot = Snapshot(ts, txid)
            if engine.read("t", (key,), snapshot) is None:
                try:
                    engine.insert(txid, "t", {"k": key, "v": ts})
                    changed = True
                except Exception:
                    changed = False
        elif op == "update":
            changed = engine.update(txid, "t", (key,), {"v": ts}) is not None
        else:
            changed = engine.delete(txid, "t", (key,))
        if not changed:
            engine.abort(txid)
        elif outcome == "commit":
            engine.log_pending_commit(txid)
            engine.commit(txid, ts)
        elif outcome == "abort":
            engine.abort(txid)
        elif outcome == "prepare_commit":
            engine.prepare(txid)
            engine.commit_prepared(txid, ts)
        else:
            engine.prepare(txid)
            engine.abort_prepared(txid)
    env.run()  # drain replay
    return engine, store, ts


class TestReplicaConvergence:
    @settings(max_examples=60, deadline=None)
    @given(operations=operation_strategy)
    def test_replica_matches_primary_at_every_snapshot(self, operations):
        engine, store, max_ts = run_history(operations)
        assert store.unresolved_count() == 0
        for probe in range(0, max_ts + 11, 10):
            snapshot = Snapshot(probe)
            for key in KEYS:
                assert (store.read("t", (key,), snapshot)
                        == engine.read("t", (key,), snapshot)), \
                    f"divergence at ts={probe} key={key}"

    @settings(max_examples=40, deadline=None)
    @given(operations=operation_strategy)
    def test_replica_frontier_matches_last_commit(self, operations):
        engine, store, _max_ts = run_history(operations)
        assert store.max_commit_ts == engine.last_commit_ts

    @settings(max_examples=40, deadline=None)
    @given(operations=operation_strategy)
    def test_replica_version_counts_match(self, operations):
        engine, store, _max_ts = run_history(operations)
        for key in KEYS:
            assert (len(store.table("t").versions((key,)))
                    == len(engine.table("t").versions((key,))))
