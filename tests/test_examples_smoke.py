"""Smoke tests: every shipped example must run to completion.

Examples are documentation that executes; breaking one silently would be a
regression in the library's public story.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example, capsys):
    runpy.run_path(str(EXAMPLES_DIR / example), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{example} printed nothing"


def test_quickstart_output_mentions_key_concepts(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Replica Consistency Point" in out
    assert "GTM mode" in out
    assert "dwell" in out
