"""PR 4 hot-path guarantees.

Two families of checks:

- the memoized MVCC visibility path (``heap._first_visible``, used by
  ``HeapTable.scan`` / ``lookup_index``) agrees with the uncached
  reference rule ``version_visible`` on randomized version chains and
  commit logs (hypothesis property);
- the optimized kernel reproduces the exact pre-optimization trace digest
  of the lint smoke scenario — the determinism proof the perf work is
  gated on.

Plus targeted coverage for the satellite changes: the SQL point-select
fast path and the strict ``Scale.from_env``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.clog import CommitLog
from repro.storage.heap import (
    HeapTable,
    RowVersion,
    _first_visible,
    version_visible,
)
from repro.storage.snapshot import Snapshot

# ----------------------------------------------------------------------
# Property: memoized visibility == reference visibility
# ----------------------------------------------------------------------
TXIDS = list(range(1, 9))


@st.composite
def clog_and_chain(draw):
    """A commit log with randomized outcomes and one version chain
    (newest first) whose xmin/xmax draw from the same txid pool."""
    clog = CommitLog()
    committed_any = False
    for txid in TXIDS:
        clog.begin(txid)
        outcome = draw(st.sampled_from(["committed", "aborted", "open"]))
        if outcome == "committed":
            clog.commit(txid, draw(st.integers(min_value=1, max_value=50)))
            committed_any = True
        elif outcome == "aborted":
            clog.abort(txid)
    chain = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        xmin = draw(st.sampled_from(TXIDS))
        xmax = draw(st.one_of(st.none(), st.sampled_from(TXIDS)))
        chain.append(RowVersion(key=("k",), data={"v": len(chain)},
                                xmin=xmin, xmax=xmax))
    read_ts = draw(st.integers(min_value=0, max_value=60))
    own = draw(st.one_of(st.none(), st.sampled_from(TXIDS)))
    del committed_any
    return clog, chain, read_ts, own


@settings(max_examples=300, deadline=None)
@given(clog_and_chain())
def test_first_visible_matches_reference(case):
    clog, chain, read_ts, own = case
    snapshot = Snapshot(read_ts, own)
    expected = None
    for version in chain:
        if version_visible(version, snapshot, clog):
            expected = version
            break
    memo: dict[int, bool] = {}
    got = _first_visible(chain, read_ts, own, clog._commit_ts, memo)
    assert got is expected
    # The memo must also be reusable across chains within one call site:
    # a second pass with the warm memo gives the same answer.
    assert _first_visible(chain, read_ts, own, clog._commit_ts, memo) is expected


@settings(max_examples=100, deadline=None)
@given(clog_and_chain())
def test_scan_matches_per_version_reference(case):
    clog, chain, read_ts, own = case
    heap = HeapTable("t")
    # Spread the chain across several keys to exercise the shared memo.
    for index, version in enumerate(chain):
        fresh = RowVersion(key=(index % 3,), data=dict(version.data),
                           xmin=version.xmin, xmax=version.xmax)
        heap.add_version(fresh)
    snapshot = Snapshot(read_ts, own)
    expected = []
    for key in heap.keys():
        for version in heap.versions(key):
            if version_visible(version, snapshot, clog):
                expected.append(version.data)
                break
    assert list(heap.scan(snapshot, clog)) == expected


def test_commit_ts_table_tracks_outcomes():
    clog = CommitLog()
    clog.begin(1)
    clog.begin(2)
    clog.commit(1, 10)
    clog.abort(2)
    assert clog.is_committed_before(1, 10)
    assert not clog.is_committed_before(1, 9)
    assert not clog.is_committed_before(2, 99)
    assert not clog.is_committed_before(777, 99)  # unknown txid
    # rebuild_cache reconstructs the table after wholesale _records swap.
    records = clog._records
    rebuilt = CommitLog()
    rebuilt._records = dict(records)
    rebuilt.rebuild_cache()
    assert rebuilt._commit_ts == clog._commit_ts


# ----------------------------------------------------------------------
# Determinism: the optimized kernel reproduces the pre-PR digest
# ----------------------------------------------------------------------
def test_smoke_digest_matches_pre_optimization_recording():
    from repro.bench.perf import PRE_OPT_SMOKE_DIGEST
    from repro.lint.determinism import smoke_run

    summary = smoke_run()
    assert summary["digest"] == PRE_OPT_SMOKE_DIGEST, (
        "the hot-path optimizations changed the simulated history; "
        "this digest was recorded on the unoptimized kernel")


# ----------------------------------------------------------------------
# SQL point-select fast path
# ----------------------------------------------------------------------
def test_point_plan_eligibility():
    from repro.sql import parse
    from repro.sql.executor import _plan_point_select

    plan = _plan_point_select(parse("SELECT id, val FROM t WHERE id = ?"))
    assert plan is not None and plan.eq == (("id", True, 0),)
    assert plan.columns == (("id", "id"), ("val", "val"))

    star = _plan_point_select(parse("SELECT * FROM t WHERE id = 5 AND val = ?"))
    assert star is not None and star.star
    assert set(star.eq) == {("id", False, 5), ("val", True, 0)}

    for sql in [
        "SELECT * FROM t",                               # no WHERE
        "SELECT * FROM t WHERE id = ? OR val = 1",        # OR
        "SELECT * FROM t WHERE id > 1",                   # non-equality
        "SELECT * FROM t WHERE id = 1 AND id = 2",        # duplicate column
        "SELECT * FROM t WHERE id = ? ORDER BY val",      # order by
        "SELECT * FROM t WHERE id = ? LIMIT 1",           # limit
        "SELECT COUNT(*) FROM t WHERE id = ?",            # aggregate
    ]:
        assert _plan_point_select(parse(sql)) is None, sql


def _tiny_db():
    from repro import ClusterConfig, build_cluster, one_region

    db = build_cluster(ClusterConfig.globaldb(one_region(), seed=9))
    session = db.session()
    session.create_table("pts", [("id", "int"), ("val", "int")],
                         primary_key=["id"])
    session.begin()
    for i in range(8):
        session.insert("pts", {"id": i, "val": i * 3})
    session.commit()
    db.run_for(0.05)
    return db, session


def test_point_select_fast_path_matches_generic():
    _db, session = _tiny_db()
    prepared = "SELECT id, val FROM pts WHERE id = ?"
    for key in (0, 3, 7, 99):
        fast = session.execute(prepared, (key,))
        # `1 = 1` (no column on either side) is ineligible for the point
        # plan, so this goes through the generic scan path.
        generic = session.execute(
            f"SELECT id, val FROM pts WHERE id = {key} AND 1 = 1")
        assert fast == generic
    # The plan was cached on the (session-cached) AST node.
    statement = session._statement_cache[prepared]
    assert getattr(statement, "_point_plan", None) is not None
    # Extra non-key equality conjuncts are re-checked against the row.
    hit = session.execute(
        "SELECT * FROM pts WHERE id = ? AND val = ?", (2, 6))
    assert hit == [{"id": 2, "val": 6}]
    miss = session.execute(
        "SELECT * FROM pts WHERE id = ? AND val = ?", (2, 7))
    assert miss == []
    # NULL never matches under SQL equality semantics.
    assert session.execute("SELECT * FROM pts WHERE id = ?", (None,)) == []


def test_point_select_missing_param_raises():
    from repro.errors import SqlError

    _db, session = _tiny_db()
    with pytest.raises(SqlError):
        session.execute("SELECT * FROM pts WHERE id = ?", ())


# ----------------------------------------------------------------------
# Scale.from_env strictness (satellite)
# ----------------------------------------------------------------------
def test_scale_from_env_strict(monkeypatch):
    from repro.bench import Scale

    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert Scale.from_env().name == "quick"
    monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
    assert Scale.from_env().name == "full"
    monkeypatch.setenv("REPRO_BENCH_SCALE", "QUICK")
    assert Scale.from_env().name == "quick"
    monkeypatch.setenv("REPRO_BENCH_SCALE", "fulll")
    with pytest.raises(ValueError, match="REPRO_BENCH_SCALE"):
        Scale.from_env()


def test_bench_cli_scale_flag_overrides_env(monkeypatch):
    from repro.bench.__main__ import _resolve_scale

    monkeypatch.setenv("REPRO_BENCH_SCALE", "not-a-scale")
    # --scale bypasses the (broken) environment variable entirely...
    assert _resolve_scale("full").name == "full"
    assert _resolve_scale("quick").name == "quick"
    # ...but with no flag the strict env parsing applies.
    with pytest.raises(ValueError):
        _resolve_scale(None)
    monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
    assert _resolve_scale(None).name == "full"
