"""Property-based tests (hypothesis) for the core invariants.

The crown jewels are R.1/R.2 (§III): under arbitrary clock drift and
operation interleavings, GClock commit-wait must deliver externally
consistent timestamps. Node code never sees true simulation time, so these
properties genuinely depend on the protocol, not on the test's knowledge.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.clocks import (
    ClockSyncConfig,
    ClockSyncDaemon,
    GClockSource,
    GlobalTimeDevice,
    PhysicalClock,
)
from repro.ror.skyline import NodeMetrics, choose_node, skyline
from repro.sim import Environment, ms, us
from repro.sim.rand import RandomStreams
from repro.storage import ColumnDef, Snapshot, StorageEngine, TableSchema
from repro.storage.clog import CommitLog
from repro.storage.heap import version_visible


def make_sources(env, node_count, seed, max_drift_ppm=200.0):
    streams = RandomStreams(seed)
    device = GlobalTimeDevice(env, "r", rng=streams.stream("device"))
    sources = []
    for index in range(node_count):
        clock = PhysicalClock(env, f"n{index}", streams.stream(f"clock{index}"),
                              max_drift_ppm=max_drift_ppm,
                              initial_offset_ns=streams.stream("offsets").randint(
                                  -us(30), us(30)))
        sync = ClockSyncDaemon(env, clock, device, ClockSyncConfig(),
                               name=f"n{index}")
        sources.append(GClockSource(env, clock, sync))
    return sources


class TestExternalConsistency:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), node_count=st.integers(2, 5),
           events=st.integers(3, 12))
    def test_r1_commit_wait_orders_across_nodes(self, seed, node_count, events):
        """R.1: a transaction that takes its timestamp after another's
        commit-wait finished (in true time) gets a larger timestamp,
        regardless of which node's (drifting) clock produced each."""
        env = Environment()
        sources = make_sources(env, node_count, seed)
        rng = random.Random(seed)
        history = []  # (commit_done_true_time, ts)

        def one_txn(source):
            stamp = source.timestamp()
            yield from source.wait_until_after(stamp.ts)
            history.append((env.now, stamp.ts))

        def driver():
            for _ in range(events):
                source = rng.choice(sources)
                proc = env.process(one_txn(source))
                yield proc  # sequential: each starts after previous finished
                yield env.timeout(rng.randint(0, ms(2)))

        env.run(until=env.process(driver()))
        # Sequential in true time => timestamps strictly increase.
        timestamps = [ts for _done, ts in history]
        assert timestamps == sorted(timestamps)
        assert len(set(timestamps)) == len(timestamps)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_commit_wait_outlasts_true_time_of_timestamp(self, seed):
        """After wait_until_after(ts), true time strictly exceeds ts — the
        fact R.1's proof rests on."""
        env = Environment()
        (source,) = make_sources(env, 1, seed)
        env.run(until=ms(3))

        def flow():
            stamp = source.timestamp()
            yield from source.wait_until_after(stamp.ts)
            return stamp.ts

        ts = env.run(until=env.process(flow()))
        assert env.now > ts

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), node_count=st.integers(2, 4))
    def test_r2_reader_snapshot_excludes_later_writers(self, seed, node_count):
        """R.2 shape: a writer that takes its commit timestamp after a
        reader finished its invocation wait gets ts > the reader's
        snapshot, so the reader can never be required to see it."""
        env = Environment()
        sources = make_sources(env, node_count, seed)
        rng = random.Random(seed + 1)
        reader_source = sources[0]
        writer_source = sources[rng.randrange(1, node_count)]
        outcome = {}

        def reader():
            stamp = reader_source.timestamp()
            yield from reader_source.wait_until_after(stamp.ts)
            outcome["read_ts"] = stamp.ts
            outcome["reader_done"] = env.now

        def writer():
            yield env.process(reader())  # starts strictly after the reader
            stamp = writer_source.timestamp()
            outcome["write_ts"] = stamp.ts

        env.run(until=env.process(writer()))
        assert outcome["write_ts"] > outcome["read_ts"]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), drift=st.floats(0.0, 500.0))
    def test_bounds_always_contain_true_time(self, seed, drift):
        env = Environment()
        sources = make_sources(env, 1, seed, max_drift_ppm=drift)
        source = sources[0]
        rng = random.Random(seed)
        for _ in range(20):
            env.run(until=env.now + rng.randint(1, ms(7)))
            earliest, latest = source.bounds()
            assert earliest <= env.now <= latest


class TestMvccProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_exactly_one_visible_version_per_key(self, data):
        """However a key's history interleaves inserts/updates/deletes from
        committed transactions, any snapshot sees at most one version."""
        env = Environment()
        engine = StorageEngine(env, "dn")
        engine.create_table(TableSchema(
            name="t", columns=[ColumnDef("k", "int"), ColumnDef("v", "int")],
            primary_key=("k",)))
        ts = 0
        txid = 0
        alive = False
        operations = data.draw(st.lists(
            st.sampled_from(["insert", "update", "delete"]),
            min_size=1, max_size=20))
        boundaries = []
        for op in operations:
            txid += 1
            ts += 10
            engine.begin(txid)
            if op == "insert":
                if alive:
                    engine.abort(txid)
                    continue
                engine.insert(txid, "t", {"k": 1, "v": ts})
                alive = True
            elif op == "update":
                if engine.update(txid, "t", (1,), {"v": ts}) is None:
                    engine.abort(txid)
                    continue
            else:
                if not engine.delete(txid, "t", (1,)):
                    engine.abort(txid)
                    continue
                alive = False
            engine.log_pending_commit(txid)
            engine.commit(txid, ts)
            boundaries.append(ts)
        heap = engine.table("t")
        for probe in [0] + boundaries + [ts + 5, ts - 5]:
            snapshot = Snapshot(max(0, probe))
            visible = [version for version in heap.versions((1,))
                       if version_visible(version, snapshot, engine.clog)]
            assert len(visible) <= 1

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 5), st.booleans()),
                    min_size=1, max_size=15))
    def test_aborted_transactions_leave_no_trace(self, plan):
        """Any mix of committed/aborted writers: aborted effects invisible,
        committed effects exactly preserved."""
        env = Environment()
        engine = StorageEngine(env, "dn")
        engine.create_table(TableSchema(
            name="t", columns=[ColumnDef("k", "int"), ColumnDef("v", "int")],
            primary_key=("k",)))
        engine.begin(1)
        for key in range(1, 6):
            engine.insert(1, "t", {"k": key, "v": 0})
        engine.log_pending_commit(1)
        engine.commit(1, 10)
        expected = {key: 0 for key in range(1, 6)}
        ts = 10
        txid = 1
        for key, commit in plan:
            txid += 1
            ts += 10
            engine.begin(txid)
            engine.update(txid, "t", (key,), {"v": ts})
            if commit:
                engine.log_pending_commit(txid)
                engine.commit(txid, ts)
                expected[key] = ts
            else:
                engine.abort(txid)
        snapshot = Snapshot(ts + 1)
        for key, value in expected.items():
            assert engine.read("t", (key,), snapshot)["v"] == value


class TestSkylineProperties:
    node_strategy = st.builds(
        NodeMetrics,
        name=st.text(min_size=1, max_size=4),
        staleness_ns=st.integers(0, 10**9),
        latency_ns=st.integers(0, 10**8),
        max_commit_ts=st.integers(0, 10**6),
        up=st.booleans(),
        is_primary=st.booleans(),
    )

    @settings(max_examples=100, deadline=None)
    @given(st.lists(node_strategy, max_size=12))
    def test_skyline_members_are_undominated(self, nodes):
        frontier = skyline(nodes)
        live = [node for node in nodes if node.up]
        for member in frontier:
            assert member.up
            assert not any(other.dominates(member) for other in live)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(node_strategy, max_size=12))
    def test_every_live_node_dominated_by_some_skyline_member(self, nodes):
        frontier = skyline(nodes)
        live = [node for node in nodes if node.up]
        for node in live:
            assert (node in frontier
                    or any(member.dominates(node) or
                           (member.staleness_ns <= node.staleness_ns
                            and member.latency_ns <= node.latency_ns)
                           for member in frontier))

    @settings(max_examples=100, deadline=None)
    @given(st.lists(node_strategy, max_size=12),
           st.integers(0, 10**9), st.integers(0, 10**6),
           st.integers(0, 10**9))
    def test_choose_node_respects_constraints(self, nodes, bound, min_ts, seed):
        rng = random.Random(seed)
        chosen = choose_node(nodes, staleness_bound_ns=bound,
                             min_commit_ts=min_ts, rng=rng)
        if chosen is not None:
            assert chosen.up
            assert chosen.staleness_ns <= bound
            assert chosen.is_primary or chosen.max_commit_ts >= min_ts

    @settings(max_examples=50, deadline=None)
    @given(st.lists(node_strategy, max_size=12))
    def test_choose_node_none_only_if_nothing_qualifies(self, nodes):
        chosen = choose_node(nodes)
        has_live = any(node.up for node in nodes)
        assert (chosen is not None) == has_live


class TestClogProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 30), st.booleans()),
                    min_size=1, max_size=30, unique_by=lambda t: t[0]))
    def test_commit_abort_state_machine(self, plan):
        clog = CommitLog()
        committed = {}
        ts = 0
        for txid, commit in plan:
            clog.begin(txid)
            ts += 1
            if commit:
                clog.commit(txid, ts)
                committed[txid] = ts
            else:
                clog.abort(txid)
        for txid, commit in plan:
            if commit:
                assert clog.commit_ts(txid) == committed[txid]
                assert clog.is_committed_before(txid, committed[txid])
                assert not clog.is_committed_before(txid, committed[txid] - 1)
            else:
                assert clog.commit_ts(txid) is None
