"""Tests for semaphores, the settle combinator, and time units."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, ms, seconds, us
from repro.sim.events import settle
from repro.sim.resources import Semaphore
from repro.sim.units import MINUTE, ns_to_ms, ns_to_seconds


class TestSemaphore:
    def test_capacity_enforced(self):
        env = Environment()
        pool = Semaphore(env, capacity=2)
        order = []

        def worker(name):
            yield pool.acquire()
            order.append((name, "in", env.now))
            yield env.timeout(10)
            pool.release()
            order.append((name, "out", env.now))

        for name in "abc":
            env.process(worker(name))
        env.run()
        ins = [(name, when) for name, what, when in order if what == "in"]
        # Third worker waits for a release.
        assert ins == [("a", 0), ("b", 0), ("c", 10)]

    def test_fifo_fairness(self):
        env = Environment()
        pool = Semaphore(env, capacity=1)
        granted = []

        def worker(name, start_delay):
            yield env.timeout(start_delay)
            yield pool.acquire()
            granted.append(name)
            yield env.timeout(5)
            pool.release()

        env.process(worker("first", 0))
        env.process(worker("second", 1))
        env.process(worker("third", 2))
        env.run()
        assert granted == ["first", "second", "third"]

    def test_release_without_acquire_rejected(self):
        env = Environment()
        pool = Semaphore(env, capacity=1)
        with pytest.raises(SimulationError):
            pool.release()

    def test_zero_capacity_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Semaphore(env, capacity=0)

    def test_load_metric(self):
        env = Environment()
        pool = Semaphore(env, capacity=2)
        pool.acquire()
        assert pool.load == pytest.approx(0.5)
        pool.acquire()
        pool.acquire()  # queued
        assert pool.load == pytest.approx(1.5)
        assert pool.queue_length == 1
        assert pool.peak_queue == 1


class TestSettle:
    def test_settle_waits_for_all_outcomes(self):
        env = Environment()
        good = env.timeout(10, value="ok")
        bad = env.event()

        def failer():
            yield env.timeout(20)
            bad.fail(RuntimeError("x"))

        env.process(failer())

        def waiter():
            yield settle(env, [good, bad])
            return env.now, good.ok, bad.ok

        when, good_ok, bad_ok = env.run(until=env.process(waiter()))
        assert when == 20
        assert good_ok and not bad_ok

    def test_settle_failure_does_not_propagate(self):
        env = Environment()
        bad = env.event()
        bad.fail(ValueError("contained"))

        def waiter():
            yield settle(env, [bad])
            return "survived"

        assert env.run(until=env.process(waiter())) == "survived"

    def test_settle_empty_fires_immediately(self):
        env = Environment()

        def waiter():
            yield settle(env, [])
            return env.now

        assert env.run(until=env.process(waiter())) == 0

    def test_settle_with_already_processed_children(self):
        env = Environment()
        done = env.timeout(1)
        env.run(until=10)

        def waiter():
            yield settle(env, [done])
            return env.now

        assert env.run(until=env.process(waiter())) == 10


class TestUnits:
    def test_conversions_round_trip(self):
        assert us(1) == 1_000
        assert ms(1) == 1_000_000
        assert seconds(1) == 1_000_000_000
        assert MINUTE == 60 * seconds(1)
        assert ns_to_seconds(seconds(2.5)) == pytest.approx(2.5)
        assert ns_to_ms(ms(7.25)) == pytest.approx(7.25)

    def test_fractional_values_round(self):
        assert us(0.5) == 500
        assert ms(0.0001) == 100
