"""Tests for the TPC-C and Sysbench workloads."""

import random

import pytest

from repro import ClusterConfig, build_cluster, one_region, three_city
from repro.workloads import (
    SysbenchConfig,
    SysbenchWorkload,
    TpccConfig,
    TpccWorkload,
    run_workload,
)
from repro.workloads.driver import WorkloadStats
from repro.workloads.tpcc import ReadOnlyTpccWorkload
from repro.workloads.tpcc.generator import generate_rows, nurand
from repro.workloads.tpcc.schema import last_name


def small_config(**overrides):
    defaults = dict(warehouses=2, districts_per_warehouse=2,
                    customers_per_district=10, items=20,
                    initial_orders_per_district=5)
    defaults.update(overrides)
    return TpccConfig(**defaults)


class TestGenerator:
    def test_nurand_stays_in_range(self):
        rng = random.Random(0)
        for _ in range(500):
            value = nurand(rng, 1023, 7, 1, 100)
            assert 1 <= value <= 100

    def test_last_name_matches_spec_examples(self):
        assert last_name(0) == "BARBARBAR"
        assert last_name(371) == "PRICALLYOUGHT"
        assert last_name(999) == "EINGEINGEING"

    def test_row_counts(self):
        config = small_config()
        counts = {}
        for table, _row in generate_rows(config, random.Random(0)):
            counts[table] = counts.get(table, 0) + 1
        assert counts["warehouse"] == 2
        assert counts["district"] == 4
        assert counts["customer"] == 40
        assert counts["item"] == 20
        assert counts["stock"] == 40
        assert counts["orders"] == 20
        assert counts["neworder"] < counts["orders"]
        assert counts["orderline"] >= counts["orders"] * 5

    def test_initial_orders_leave_consistent_next_o_id(self):
        config = small_config()
        districts = [row for table, row in generate_rows(config, random.Random(0))
                     if table == "district"]
        for district in districts:
            assert district["d_next_o_id"] == config.initial_orders_per_district + 1


class TestTpccExecution:
    def test_full_mix_runs_and_commits(self):
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        workload = TpccWorkload(small_config())
        result = run_workload(db, workload, terminals=4, duration_s=1.0)
        assert result.stats.committed > 20
        assert result.stats.abort_rate < 0.2

    def test_all_five_types_appear(self):
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        workload = TpccWorkload(small_config())
        result = run_workload(db, workload, terminals=8, duration_s=3.0)
        assert set(result.stats.by_type) >= {
            "new_order", "payment", "order_status", "delivery", "stock_level"}

    def test_district_counter_matches_orders(self):
        """Database consistency: d_next_o_id - 1 == max o_id per district
        (TPC-C consistency condition 1)."""
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        workload = TpccWorkload(small_config(new_order_abort_pct=0.0))
        run_workload(db, workload, terminals=4, duration_s=1.0)
        session = db.session()
        session.begin()
        districts = session.scan("district")
        orders = session.scan("orders")
        session.commit()
        for district in districts:
            w, d = district["d_w_id"], district["d_id"]
            o_ids = [order["o_id"] for order in orders
                     if order["o_w_id"] == w and order["o_d_id"] == d]
            assert district["d_next_o_id"] == max(o_ids) + 1

    def test_warehouse_ytd_matches_history(self):
        """TPC-C consistency condition 2-ish: sum of payment amounts equals
        the warehouse YTD delta."""
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        workload = TpccWorkload(small_config(new_order_abort_pct=0.0))
        run_workload(db, workload, terminals=4, duration_s=1.0)
        session = db.session()
        session.begin()
        warehouses = session.scan("warehouse")
        history = session.scan("history")
        session.commit()
        for warehouse in warehouses:
            paid = sum(entry["h_amount"] for entry in history
                       if entry["h_w_id"] == warehouse["w_id"])
            assert warehouse["w_ytd"] == pytest.approx(300000.0 + paid)

    def test_remote_txn_pct_targets_other_regions(self):
        db = build_cluster(ClusterConfig.globaldb(three_city()))
        workload = TpccWorkload(small_config(warehouses=6, remote_txn_pct=1.0))
        workload.setup(db)
        cn = db.cns[0]
        rng = random.Random(1)
        homes = {workload.home_warehouse(cn, 0, rng) for _ in range(50)}
        regions = {workload._warehouse_region[w] for w in homes}
        assert cn.region not in regions

    def test_local_txns_stay_local(self):
        db = build_cluster(ClusterConfig.globaldb(three_city()))
        workload = TpccWorkload(small_config(warehouses=6, remote_txn_pct=0.0))
        workload.setup(db)
        cn = db.cns[0]
        rng = random.Random(1)
        for terminal in range(10):
            w = workload.home_warehouse(cn, terminal, rng)
            assert workload._warehouse_region[w] == cn.region

    def test_spec_remotes_confined_to_region_by_default(self):
        db = build_cluster(ClusterConfig.globaldb(three_city()))
        workload = TpccWorkload(small_config(warehouses=9))
        workload.setup(db)
        rng = random.Random(2)
        for w_id in workload._warehouse_region:
            other = workload._other_warehouse(rng, w_id)
            if other != w_id:
                assert (workload._warehouse_region[other]
                        == workload._warehouse_region[w_id])

    def test_new_order_rollback_rate(self):
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        workload = TpccWorkload(small_config(
            new_order_abort_pct=1.0, mix=(1.0, 0.0, 0.0, 0.0, 0.0)))
        result = run_workload(db, workload, terminals=2, duration_s=0.5)
        assert result.stats.committed == 0
        assert result.stats.aborted > 0


class TestReadOnlyTpcc:
    def test_runs_only_read_types(self):
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        workload = ReadOnlyTpccWorkload(small_config(warehouses=6))
        result = run_workload(db, workload, terminals=6, duration_s=1.0,
                              warmup_s=0.2)
        assert set(result.stats.by_type) <= {"order_status", "stock_level"}
        assert result.stats.committed > 10

    def test_read_only_uses_replicas_when_ror_enabled(self):
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        workload = ReadOnlyTpccWorkload(small_config(warehouses=6))
        run_workload(db, workload, terminals=6, duration_s=1.0, warmup_s=0.3)
        assert sum(cn.ror_reads for cn in db.cns) > 0

    def test_read_only_baseline_never_uses_replicas(self):
        db = build_cluster(ClusterConfig.baseline(one_region()))
        workload = ReadOnlyTpccWorkload(small_config(warehouses=6))
        run_workload(db, workload, terminals=6, duration_s=1.0)
        assert sum(cn.ror_reads for cn in db.cns) == 0


class TestSysbench:
    def test_point_select_commits(self):
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        workload = SysbenchWorkload(SysbenchConfig(tables=2, rows_per_table=50))
        result = run_workload(db, workload, terminals=8, duration_s=0.5,
                              warmup_s=0.1)
        assert result.stats.committed > 100
        assert result.stats.abort_rate == 0

    def test_remote_pct_partitions_keys(self):
        db = build_cluster(ClusterConfig.globaldb(three_city()))
        workload = SysbenchWorkload(SysbenchConfig(tables=3, rows_per_table=60,
                                                   remote_pct=1.0))
        workload.setup(db)
        cn = db.cns[0]
        rng = random.Random(0)
        for _ in range(30):
            table, row_id = workload._pick_key(cn, rng)
            shard = db.shard_map.shard_for_value(table, row_id)
            assert db.primaries[shard].region != cn.region

    def test_read_write_variant(self):
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        workload = SysbenchWorkload(SysbenchConfig(tables=2, rows_per_table=50),
                                    read_write=True)
        result = run_workload(db, workload, terminals=4, duration_s=0.5)
        assert result.stats.committed > 10


class TestDriverStats:
    def test_percentiles_and_throughput(self):
        stats = WorkloadStats()
        for latency_ms_value in range(1, 101):
            stats.record("t", latency_ms_value * 1_000_000, ok=True)
        stats.window_ns = 10 * 1_000_000_000
        assert stats.committed == 100
        assert stats.throughput_per_s == pytest.approx(10.0)
        assert stats.latency_percentile_ms(50) == pytest.approx(50, abs=2)
        assert stats.latency_percentile_ms(99) == pytest.approx(99, abs=2)
        assert stats.mean_latency_ms == pytest.approx(50.5)

    def test_warmup_excluded(self):
        db = build_cluster(ClusterConfig.globaldb(one_region()))
        workload = SysbenchWorkload(SysbenchConfig(tables=1, rows_per_table=20))
        result = run_workload(db, workload, terminals=2, duration_s=0.2,
                              warmup_s=0.2)
        # Window is the measured duration only.
        assert result.stats.window_ns == 200_000_000

    def test_cn_pinning(self):
        db = build_cluster(ClusterConfig.globaldb(three_city()))
        workload = SysbenchWorkload(SysbenchConfig(tables=2, rows_per_table=50))
        target = db.cns[1]
        run_workload(db, workload, terminals=4, duration_s=0.3,
                     cns=[target])
        others = [cn for cn in db.cns if cn is not target]
        assert target.read_only_queries > 0
        assert all(cn.read_only_queries == 0 for cn in others)
