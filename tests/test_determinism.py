"""Determinism and cross-cutting end-to-end invariants.

Reproducibility is a design requirement (DESIGN.md §4.1): identical
configurations and seeds must produce bit-identical histories, or the
benchmark tables in EXPERIMENTS.md would not be checkable claims.
"""

from repro import ClusterConfig, TransactionAborted, build_cluster, one_region, three_city
from repro.workloads import SysbenchConfig, SysbenchWorkload, TpccConfig, TpccWorkload, run_workload


def run_once(seed=0, workload_seed=42, observability=False):
    db = build_cluster(ClusterConfig.globaldb(
        one_region(), seed=seed, metrics_enabled=observability,
        trace_enabled=observability))
    workload = TpccWorkload(TpccConfig(
        warehouses=2, districts_per_warehouse=2, customers_per_district=10,
        items=20, initial_orders_per_district=5, seed=workload_seed))
    result = run_workload(db, workload, terminals=4, duration_s=0.7,
                          warmup_s=0.1)
    return (result.stats.committed, result.stats.aborted,
            dict(result.stats.by_type), db.env.now,
            db.gtm.counter, sorted(result.stats.latencies_ns)[:20])


class TestDeterminism:
    def test_same_seeds_produce_identical_runs(self):
        assert run_once() == run_once()

    def test_different_workload_seed_changes_history(self):
        assert run_once(workload_seed=42) != run_once(workload_seed=43)

    def test_observability_does_not_perturb_history(self):
        """Metrics + tracing are passive: a traced run's history is
        identical to the untraced run's, down to every latency sample."""
        assert run_once(observability=True) == run_once(observability=False)

    def test_traced_run_is_itself_deterministic(self):
        assert run_once(observability=True) == run_once(observability=True)

    def test_trace_digest_identical_across_fresh_runs(self):
        """The obs trace digest — the value the cross-process
        PYTHONHASHSEED harness (python -m repro.lint --determinism)
        compares — is identical across two in-process runs on
        freshly-built clusters."""
        def digest_once():
            db = build_cluster(ClusterConfig.globaldb(
                one_region(), seed=0, trace_enabled=True))
            workload = TpccWorkload(TpccConfig(
                warehouses=2, districts_per_warehouse=2,
                customers_per_district=10, items=20,
                initial_orders_per_district=5, seed=42))
            run_workload(db, workload, terminals=4, duration_s=0.3,
                         warmup_s=0.05)
            assert db.env.tracer.spans, "traced run recorded no spans"
            return db.env.tracer.digest()

        first, second = digest_once(), digest_once()
        assert len(first) == 64
        assert first == second

    def test_sysbench_deterministic(self):
        def once():
            db = build_cluster(ClusterConfig.globaldb(one_region(), seed=3))
            workload = SysbenchWorkload(SysbenchConfig(tables=2,
                                                       rows_per_table=40))
            result = run_workload(db, workload, terminals=6, duration_s=0.4)
            return result.stats.committed, db.env.now

        assert once() == once()


class TestMoneyConservation:
    """A cross-shard invariant under concurrent transfers, replica reads,
    a mode migration, and a replica failure — all at once."""

    def test_invariant_holds_through_chaos(self):
        db = build_cluster(ClusterConfig.baseline(three_city(),
                                                  ror_enabled=True))
        session = db.session(region="xian")
        session.create_table("accounts", [("id", "int"), ("balance", "int")],
                             primary_key=["id"])
        accounts = 18
        session.begin()
        for i in range(accounts):
            session.insert("accounts", {"id": i, "balance": 1000})
        session.commit()
        db.run_for(0.3)
        env = db.env
        stop_at = env.now + 2_500_000_000
        import random
        rng = random.Random(5)

        def transferer(cn):
            while env.now < stop_at:
                src, dst = rng.sample(range(accounts), 2)
                amount = rng.randint(1, 20)
                ctx = yield from cn.g_begin()
                try:
                    yield from cn.g_update(ctx, "accounts", (src,), {
                        "balance": lambda b, a=amount: (b or 0) - a})
                    yield from cn.g_update(ctx, "accounts", (dst,), {
                        "balance": lambda b, a=amount: (b or 0) + a})
                    yield from cn.g_commit(ctx)
                except TransactionAborted:
                    pass

        audit_totals = []

        def auditor(cn):
            while env.now < stop_at:
                try:
                    rows = yield from cn.g_scan_only("accounts")
                    audit_totals.append(sum(row["balance"] for row in rows))
                except TransactionAborted:
                    pass
                yield env.timeout(100_000_000)

        for cn in db.cns:
            env.process(transferer(cn))
        env.process(auditor(db.cns[1]))

        def chaos():
            yield env.timeout(400_000_000)
            db.replicas[0][0].fail()             # kill a replica
            migration = db.start_migration_to_gclock()
            yield migration                      # live mode migration
            yield env.timeout(300_000_000)
            db.replicas[0][0].recover()

        env.process(chaos())
        env.run(until=stop_at)
        assert audit_totals, "auditor never completed a scan"
        assert all(total == accounts * 1000 for total in audit_totals), \
            f"conservation violated: {set(audit_totals)}"
        # And the final primary-side state agrees.
        session.begin()
        rows = session.scan("accounts")
        session.commit()
        assert sum(row["balance"] for row in rows) == accounts * 1000
