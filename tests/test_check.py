"""repro.check: each checker must reject its anomaly and pass clean runs.

Every checker gets a hand-built violating history (the anomaly it exists
to catch, in minimal form) plus a clean twin — a checker that never fires
proves nothing. The recorder's Jepsen edge semantics (invoke / ok / fail /
info), unknown-outcome tainting, serialisation, and the end-to-end
``run_seed`` entry point are covered alongside.
"""

import pytest

from repro.check import (
    History,
    HistoryRecorder,
    Op,
    check_balance,
    check_external_consistency,
    check_lost_update,
    check_staleness,
    check_write_cycles,
    maybe_install,
    run_all_checks,
    run_seed,
)
from repro.check.history import FAIL, INFO, INVOKE, OK
from repro.sim.core import Environment


def transfer(index, invoke_ns, complete_ns, commit_ts, writes,
             status=OK, client="client-1"):
    """A committed (or unknown) bank transfer op, minimal Jepsen shape."""
    return Op(index=index, client=client, op="transfer", status=status,
              invoke_ns=invoke_ns, complete_ns=complete_ns,
              commit_ts=commit_ts,
              value={"writes": writes, "accounts": sorted(writes)})


def ror_read(index, read_ts, rcp, bound_ns, floor=0, balances=None):
    value = {"use_ror": True, "rcp": rcp, "bound_ns": bound_ns,
             "floor": floor}
    if balances is not None:
        value["balances"] = balances
    return Op(index=index, client="reader", op="read", status=OK,
              invoke_ns=0, complete_ns=1, read_ts=read_ts, value=value)


class TestExternalConsistency:
    def test_flags_commit_ts_behind_real_time(self):
        # A completed (t=100) before B was invoked (t=200), yet B's commit
        # timestamp is smaller: GClock's commit wait forbids exactly this.
        history = History([
            transfer(0, 0, 100, 500, {"0": [10, 5]}),
            transfer(1, 200, 300, 400, {"1": [10, 15]}),
        ])
        violations, checked = check_external_consistency(history)
        assert checked == 2
        assert [v.checker for v in violations] == ["external-consistency"]
        assert violations[0].ops == (0, 1)

    def test_equal_ts_on_disjoint_real_time_is_also_a_violation(self):
        history = History([
            transfer(0, 0, 100, 500, {"0": [10, 5]}),
            transfer(1, 200, 300, 500, {"1": [10, 15]}),
        ])
        violations, _ = check_external_consistency(history)
        assert violations

    def test_clean_and_overlapping_histories_pass(self):
        history = History([
            transfer(0, 0, 100, 500, {"0": [10, 5]}),
            transfer(1, 200, 300, 600, {"1": [10, 15]}),
            # Overlapping with both (invoked before A completed): its
            # commit_ts is unconstrained by real-time order.
            transfer(2, 50, 400, 450, {"2": [10, 15]}),
        ])
        violations, checked = check_external_consistency(history)
        assert not violations and checked == 3


class TestLostUpdate:
    def test_two_writers_consuming_the_same_before(self):
        history = History([
            transfer(0, 0, 10, 100, {"0": [1000, 990]}),
            # Read the same 1000 snapshot, overwriting op 0's update.
            transfer(1, 1, 11, 200, {"0": [1000, 980]}),
        ])
        violations, checked, skipped = check_lost_update(history, 1000)
        assert checked == 2 and skipped == 0
        assert [v.checker for v in violations] == ["lost-update"]
        assert violations[0].ops == (0, 1)

    def test_chained_updates_pass(self):
        history = History([
            transfer(0, 0, 10, 100, {"0": [1000, 990]}),
            transfer(1, 1, 11, 200, {"0": [990, 980]}),
        ])
        violations, checked, _ = check_lost_update(history, 1000)
        assert not violations and checked == 2

    def test_initial_balance_anchors_the_chain(self):
        # First write read 900, but the account started at 1000 and no
        # earlier committed write explains the difference.
        history = History([transfer(0, 0, 10, 100, {"0": [900, 890]})])
        violations, _, _ = check_lost_update(history, 1000)
        assert violations and violations[0].ops == (0,)

    def test_unknown_outcome_taints_the_account(self):
        history = History([
            # Outcome unknown: may or may not have installed 1000 -> 990.
            transfer(0, 0, 10, -1, {"0": [1000, 990]}, status=INFO),
            # Looks like a lost update against op 0 — but op 0 may never
            # have happened, so the account is skipped, not judged.
            transfer(1, 1, 11, 200, {"0": [1000, 980]}),
        ])
        violations, checked, skipped = check_lost_update(history, 1000)
        assert not violations
        assert checked == 0 and skipped == 1


class TestWriteCycles:
    def test_opposite_install_orders_form_a_cycle(self):
        # Value adjacency says op 0 -> op 1 on account "0" but
        # op 1 -> op 0 on account "1": a G0 write cycle.
        history = History([
            transfer(0, 0, 10, 100, {"0": [1000, 990], "1": [40, 30]}),
            transfer(1, 1, 11, 200, {"0": [990, 980], "1": [50, 40]}),
        ])
        violations, checked, skipped = check_write_cycles(history)
        assert checked == 4 and skipped == 0
        assert [v.checker for v in violations] == ["write-cycle"]
        assert set(violations[0].ops) == {0, 1}

    def test_consistent_orders_pass(self):
        history = History([
            transfer(0, 0, 10, 100, {"0": [1000, 990], "1": [50, 40]}),
            transfer(1, 1, 11, 200, {"0": [990, 980], "1": [40, 30]}),
        ])
        violations, _, _ = check_write_cycles(history)
        assert not violations

    def test_tainted_accounts_are_excluded(self):
        history = History([
            transfer(0, 0, 10, 100, {"0": [1000, 990], "1": [40, 30]}),
            transfer(1, 1, 11, 200, {"0": [990, 980], "1": [50, 40]}),
            transfer(2, 2, 12, -1, {"1": [30, 20]}, status=INVOKE),
        ])
        violations, checked, skipped = check_write_cycles(history)
        # Account "1" is tainted away, taking the cycle's back edge with it
        # (skipped counts the two *committed* entries it excluded).
        assert not violations
        assert checked == 2 and skipped == 2


class TestStaleness:
    def test_snapshot_behind_the_advertised_bound(self):
        history = History([ror_read(0, read_ts=100, rcp=10_000,
                                    bound_ns=1_000)])
        violations, checked = check_staleness(history)
        assert checked == 1
        assert [v.checker for v in violations] == ["staleness-bound"]

    def test_snapshot_below_the_session_floor(self):
        history = History([ror_read(0, read_ts=5_000, rcp=5_500,
                                    bound_ns=1_000, floor=5_200)])
        violations, _ = check_staleness(history)
        assert [v.checker for v in violations] == ["read-your-writes"]

    def test_fresh_snapshot_passes_and_primary_reads_are_exempt(self):
        primary_read = ror_read(1, read_ts=100, rcp=10_000, bound_ns=1_000)
        primary_read.value["use_ror"] = False   # served by the primary
        history = History([
            ror_read(0, read_ts=9_500, rcp=10_000, bound_ns=1_000),
            primary_read,
        ])
        violations, checked = check_staleness(history)
        assert not violations and checked == 1


class TestBalanceConservation:
    def test_minted_money_is_flagged(self):
        history = History([ror_read(0, read_ts=10, rcp=10, bound_ns=1_000,
                                    balances={"0": 1000, "1": 1010})])
        violations, checked = check_balance(history, 2, 1000)
        assert checked == 1
        assert [v.checker for v in violations] == ["balance-conservation"]

    def test_conserved_and_partial_snapshots(self):
        history = History([
            ror_read(0, read_ts=10, rcp=10, bound_ns=1_000,
                     balances={"0": 990, "1": 1010}),
            # Partial snapshot: not a conservation witness, not checked.
            ror_read(1, read_ts=10, rcp=10, bound_ns=1_000,
                     balances={"0": 990}),
        ])
        violations, checked = check_balance(history, 2, 1000)
        assert not violations and checked == 1


class TestRunAllChecks:
    def test_aggregates_every_checker(self):
        history = History([
            transfer(0, 0, 100, 500, {"0": [1000, 990]}),
            transfer(1, 200, 300, 400, {"0": [1000, 980]}),
        ])
        report = run_all_checks(history, accounts=2, initial_balance=1000)
        assert not report.ok
        checkers = {v.checker for v in report.violations}
        assert "external-consistency" in checkers
        assert "lost-update" in checkers
        assert set(report.checked) == {"external-consistency", "lost-update",
                                       "write-cycle", "staleness",
                                       "balance-conservation"}
        assert report.to_dict()["ok"] is False


class TestRecorder:
    def test_edge_semantics(self):
        env = Environment()
        recorder = HistoryRecorder(env).install()
        assert env.history is recorder

        op_ok = recorder.invoke("c1", "transfer", {"src": 1})
        op_fail = recorder.invoke("c2", "transfer")
        op_info = recorder.invoke("c3", "transfer")
        op_open = recorder.invoke("c4", "transfer")
        assert op_ok.status == INVOKE and op_ok.index == 0

        recorder.ok(op_ok, commit_ts=77, writes={"0": [10, 5]})
        recorder.fail(op_fail, "aborted")
        recorder.info(op_info, "commit ack lost")

        history = recorder.history()
        assert [op.status for op in history] == [OK, FAIL, INFO, INVOKE]
        assert history.committed() == [op_ok]
        assert op_ok.value == {"src": 1, "writes": {"0": [10, 5]}}
        assert op_fail.value["reason"] == "aborted"
        # info and never-completed both count as unknown
        assert history.unknown() == [op_info, op_open]

    def test_maybe_install_respects_env_var(self, monkeypatch):
        monkeypatch.delenv("REPRO_HISTORY", raising=False)
        env = Environment()
        assert maybe_install(env) is None
        monkeypatch.setenv("REPRO_HISTORY", "1")
        recorder = maybe_install(env)
        assert isinstance(recorder, HistoryRecorder)
        assert maybe_install(env) is recorder   # idempotent

    def test_jsonl_round_trip_and_digest(self, tmp_path):
        history = History([
            transfer(0, 0, 100, 500, {"0": [1000, 990]}),
            ror_read(1, read_ts=9_500, rcp=10_000, bound_ns=1_000),
        ])
        path = tmp_path / "history.jsonl"
        assert history.write_jsonl(str(path)) == 2
        loaded = History.read_jsonl(str(path))
        assert loaded.to_dicts() == history.to_dicts()
        assert loaded.digest() == history.digest()


class TestRunSeed:
    def test_quiet_run_is_clean_and_deterministic(self):
        results = [run_seed(3, nemesis="none", duration_s=0.6,
                            terminals=4, accounts=8) for _ in range(2)]
        first, second = results
        assert first["ok"], first["violations"]
        assert first["committed"] > 0
        assert first["ops"].get("ok", 0) > 0
        assert first["final_audit"] == "ok"
        # Same (seed, nemesis) pair => bit-identical experiment.
        assert first["history_digest"] == second["history_digest"]
        assert first["chaos_digest"] == second["chaos_digest"]

    def test_checkers_see_real_coverage(self):
        run = run_seed(1, nemesis="none", duration_s=0.6,
                       terminals=4, accounts=8)
        assert run["checked"]["external-consistency"] >= 2
        assert run["checked"]["lost-update"] >= 1
        assert run["checked"]["balance-conservation"] >= 1
