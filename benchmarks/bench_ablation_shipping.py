"""Ablation — the §V-A log-shipping optimisations, one at a time.

Paper narrative: GlobalDB closes the Three-City gap by compressing redo
with LZ4, using TCP BBR congestion control, and disabling Nagle's
algorithm. We run Three-City TPC-C under *synchronous* replication (where
shipping latency sits on the commit path) with each knob toggled.
"""

from conftest import record_table

from repro.bench import Scale, ablation_log_shipping


def test_ablation_log_shipping(benchmark):
    table = benchmark.pedantic(ablation_log_shipping, args=(Scale.from_env(),),
                               rounds=1, iterations=1)
    record_table(benchmark, table)
    rows = {row[0]: row for row in table.rows}
    stock = rows["stock (none+cubic+nagle)"]
    optimized = rows["optimized (lz4+bbr+off)"]
    # The full stack beats stock on throughput and ships fewer bytes.
    assert optimized[1] >= stock[1]
    assert optimized[3] < stock[3]
    # LZ4 alone shrinks wire bytes by > 2x.
    assert rows["+lz4"][4] > 2.0
