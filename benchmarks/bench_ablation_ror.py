"""Ablation — the §IV reads-on-replica machinery.

Variants: full ROR with skyline routing; ROR with crippled (serial) redo
replay; and ROR disabled (all reads to primaries). Shows where the read
throughput comes from and how replay speed bounds freshness.
"""

from conftest import record_table

from repro.bench import Scale, ablation_ror


def test_ablation_ror(benchmark):
    table = benchmark.pedantic(ablation_ror, args=(Scale.from_env(),),
                               rounds=1, iterations=1)
    record_table(benchmark, table)
    rows = {row[0]: row for row in table.rows}
    with_ror = rows["skyline + replicas"]
    without = rows["primaries only (no ROR)"]
    # Replica reads dominate primary reads on a geo cluster.
    assert with_ror[2] > 1.5 * without[2]
    assert with_ror[3] > 0          # replicas actually served reads
    assert without[3] == 0          # and never when ROR is off
    # Throttled serial replay leaves the RCP further behind the frontier.
    fast = rows["parallel replay (x8)"]
    slow = rows["throttled serial replay"]
    assert slow[5] > fast[5]
