"""Fig. 1a — motivation: baseline OLTP throughput vs geographic spread.

Paper: "Fig. 1a shows how OLTP performance degrades as the system spans
across more distant regions." We sweep a 3-region chain from same-rack to
distant-city hop latencies under the baseline (GTM + synchronous
replication) configuration.
"""

from conftest import record_table

from repro.bench import Scale, fig1a_motivation


def test_fig1a_motivation(benchmark):
    table = benchmark.pedantic(fig1a_motivation, args=(Scale.from_env(),),
                               rounds=1, iterations=1)
    record_table(benchmark, table)
    normalized = table.column("normalized")
    # The curve must fall steeply and monotonically with distance.
    assert normalized[0] == 1.0
    assert all(later <= earlier for earlier, later
               in zip(normalized, normalized[1:]))
    assert normalized[-1] < 0.5
