"""§III-A — zero-downtime GTM <-> GClock migration under live TPC-C load.

Paper (Figs. 2-3, Listing 1): DUAL mode keeps the system online throughout
the transition; only stale GTM-mode transactions that reach commit after
the GClock cutover abort; the reverse transition aborts nothing.
"""

from conftest import record_table

from repro.bench import Scale, migration_under_load


def test_migration_under_load(benchmark):
    table = benchmark.pedantic(migration_under_load, args=(Scale.from_env(),),
                               rounds=1, iterations=1)
    record_table(benchmark, table)
    commits = table.column("commits")
    assert commits, "no commit windows recorded"
    # Zero downtime: no 100 ms window without commits (ignoring the very
    # last, possibly truncated, window).
    zero_note = next(note for note in table.notes
                     if note.startswith("windows with zero commits"))
    assert zero_note.endswith(": 0")
