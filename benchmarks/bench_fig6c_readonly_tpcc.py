"""Fig. 6c — read-only TPC-C (Order-Status + Stock-Level) vs delay.

Paper: with 50% multi-shard read transactions, GlobalDB's reads-on-replica
deliver up to 14x the baseline's read throughput.
"""

from conftest import record_table

from repro.bench import Scale, fig6c_readonly_tpcc


def test_fig6c_readonly_tpcc(benchmark):
    table = benchmark.pedantic(fig6c_readonly_tpcc, args=(Scale.from_env(),),
                               rounds=1, iterations=1)
    record_table(benchmark, table)
    speedups = table.column("speedup")
    # Parity at zero delay, then a widening gap as delay grows.
    assert speedups == sorted(speedups)
    assert speedups[-1] > 5.0
    # GlobalDB itself must not degrade with delay (reads stay local).
    globaldb = table.column("globaldb_tps")
    assert min(globaldb) > 0.7 * max(globaldb)
