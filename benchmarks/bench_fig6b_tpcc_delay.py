"""Fig. 6b — full TPC-C vs injected network delay.

Paper: measuring a node *not* co-located with the GTM server, baseline
GaussDB loses up to ~90% of its throughput at 100 ms of injected delay;
GlobalDB achieves the same throughput regardless of delay.
"""

from conftest import record_table

from repro.bench import Scale, fig6b_tpcc_delay


def test_fig6b_tpcc_delay(benchmark):
    table = benchmark.pedantic(fig6b_tpcc_delay, args=(Scale.from_env(),),
                               rounds=1, iterations=1)
    record_table(benchmark, table)
    baseline_retained = table.column("baseline_retained")
    globaldb_retained = table.column("globaldb_retained")
    # Baseline degrades severely by the 100 ms point.
    assert baseline_retained[-1] < 0.25
    # GlobalDB stays (close to) flat at every delay point.
    assert min(globaldb_retained) > 0.8
