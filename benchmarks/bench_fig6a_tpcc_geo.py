"""Fig. 6a — full TPC-C: {baseline, GlobalDB} x {One-Region, Three-City}.

Paper: moving the baseline to Three-City costs about two thirds of its
throughput; GlobalDB recovers to ~91% of One-Region and pays no penalty
when deployed on One-Region.
"""

from conftest import record_table

from repro.bench import Scale, fig6a_tpcc_geo


def test_fig6a_tpcc_geo(benchmark):
    table = benchmark.pedantic(fig6a_tpcc_geo, args=(Scale.from_env(),),
                               rounds=1, iterations=1)
    record_table(benchmark, table)
    by_config = {(row[0], row[1]): row[3] for row in table.rows}
    # Baseline collapses on Three-City...
    assert by_config[("baseline", "three-city")] < 0.55
    # ...GlobalDB recovers most of it...
    assert by_config[("globaldb", "three-city")] > 2 * by_config[
        ("baseline", "three-city")]
    assert by_config[("globaldb", "three-city")] > 0.6
    # ...and costs nothing on One-Region.
    assert by_config[("globaldb", "one-region")] > 0.95
