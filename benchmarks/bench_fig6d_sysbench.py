"""Fig. 6d — Sysbench point select vs delay (2/3 remote tuples).

Paper: GlobalDB improves Sysbench read throughput by up to 8.9x over the
baseline thanks to reading from local replicas.
"""

from conftest import record_table

from repro.bench import Scale, fig6d_sysbench_point_select


def test_fig6d_sysbench_point_select(benchmark):
    table = benchmark.pedantic(fig6d_sysbench_point_select,
                               args=(Scale.from_env(),),
                               rounds=1, iterations=1)
    record_table(benchmark, table)
    speedups = table.column("speedup")
    assert speedups == sorted(speedups)
    assert speedups[-1] > 4.0
    globaldb = table.column("globaldb_tps")
    assert min(globaldb) > 0.7 * max(globaldb)  # flat under delay
