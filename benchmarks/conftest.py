"""Shared benchmark plumbing.

Each benchmark runs one experiment from :mod:`repro.bench.experiments`,
records the resulting table in pytest-benchmark's ``extra_info``, saves it
under ``benchmarks/results/``, and the terminal-summary hook prints every
table at the end of the run so `pytest benchmarks/ --benchmark-only` output
contains the paper-style numbers directly.

Scale: set ``REPRO_BENCH_SCALE=full`` for paper-scale clients (600
terminals); the default ``quick`` keeps the suite in minutes.
"""

from __future__ import annotations

import pathlib

_TABLES: list = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_table(benchmark, table) -> None:
    """Attach an ExperimentTable to a benchmark and queue it for printing."""
    benchmark.extra_info["experiment"] = table.to_dict()
    _TABLES.append(table)
    _RESULTS_DIR.mkdir(exist_ok=True)
    slug = "".join(ch if ch.isalnum() else "_" for ch in table.experiment)[:60]
    (_RESULTS_DIR / f"{slug}.txt").write_text(table.render() + "\n")


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "reproduced paper tables")
    for table in _TABLES:
        terminalreporter.write_line(table.render())
        terminalreporter.write_line("")
